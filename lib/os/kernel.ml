module As = Hemlock_vm.Address_space
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Cpu = Hemlock_isa.Cpu
module Reg = Hemlock_isa.Reg
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

exception Deadlock of string
exception Os_error of string
exception Wrong_format

type fault = {
  f_addr : int;
  f_access : Prot.access;
  f_reason : As.fault_reason;
}

type segv_result = Resolved | Retry_when of (unit -> bool) | Unhandled

type fd = int

type fd_entry = { fe_seg : Segment.t; mutable fe_pos : int }

type msgq = { mq_queue : Bytes.t Queue.t; mq_capacity : int }

type t = {
  fs : Fs.t;
  proc_table : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  console_buf : Buffer.t;
  segv_handlers : (int, (string * handler) list) Hashtbl.t;
  ext_syscalls : (int, t -> Proc.t -> Cpu.t -> unit) Hashtbl.t;
  mutable binfmts : (string * (t -> Proc.t -> Bytes.t -> path:string -> int)) list;
  fd_entries : (int * int, fd_entry) Hashtbl.t;
  next_fds : (int, int) Hashtbl.t;
  locks : (string, int) Hashtbl.t;
  msgqs : (string, msgq) Hashtbl.t;
  daemons : (int, unit) Hashtbl.t;
  mutable tick_count : int;
  mutable fork_hooks : (parent:Proc.t -> child:Proc.t -> unit) list;
  pd_services : (string, pd_service) Hashtbl.t;
}

and pd_service = { pd_owner : Proc.t; pd_entry : t -> Proc.t -> int -> int }

and handler = t -> Proc.t -> fault -> segv_result

type segv_handler = handler

(* Internal control-flow exceptions for ISA syscall dispatch. *)
exception Isa_exit of int
exception Isa_yield
exception Isa_blocked of (unit -> bool)
exception Isa_fatal of string

let create () =
  let fs = Fs.create () in
  Fs.rescan_shared fs;
  {
    fs;
    proc_table = Hashtbl.create 32;
    next_pid = 1;
    console_buf = Buffer.create 256;
    segv_handlers = Hashtbl.create 32;
    ext_syscalls = Hashtbl.create 8;
    binfmts = [];
    fd_entries = Hashtbl.create 32;
    next_fds = Hashtbl.create 32;
    locks = Hashtbl.create 8;
    msgqs = Hashtbl.create 8;
    daemons = Hashtbl.create 8;
    tick_count = 0;
    fork_hooks = [];
    pd_services = Hashtbl.create 8;
  }

let add_fork_hook t hook = t.fork_hooks <- t.fork_hooks @ [ hook ]

let fs t = t.fs

let reboot t = Fs.rescan_shared t.fs

let console t = Buffer.contents t.console_buf
let console_clear t = Buffer.clear t.console_buf

let ticks t = t.tick_count

(* --- protection-domain calls (the paper's future-work syscall) -------- *)

let register_pd_service t ~name ~owner pd_entry =
  if Hashtbl.mem t.pd_services name then
    raise (Os_error ("pd service exists: " ^ name));
  Hashtbl.replace t.pd_services name { pd_owner = owner; pd_entry }

let pd_call t proc ~service arg =
  match Hashtbl.find_opt t.pd_services service with
  | None -> raise (Os_error ("no such pd service: " ^ service))
  | Some { pd_owner; pd_entry } ->
    (* One trap, two domain switches (in and out), no copying: the
       handler runs against the server's address space while the caller
       is suspended. *)
    Stats.global.syscalls <- Stats.global.syscalls + 1;
    Stats.global.context_switches <- Stats.global.context_switches + 2;
    ignore proc;
    pd_entry t pd_owner arg

(* --- signals ----------------------------------------------------------- *)

let install_segv_handler t proc ~name h =
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.segv_handlers proc.Proc.pid) in
  Hashtbl.replace t.segv_handlers proc.Proc.pid ((name, h) :: chain)

let deliver_segv t proc fault =
  Stats.global.faults <- Stats.global.faults + 1;
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.segv_handlers proc.Proc.pid) in
  let rec walk = function
    | [] -> Unhandled
    | (_, h) :: rest -> (
      match h t proc fault with
      | Resolved -> Resolved
      | Retry_when cond -> Retry_when cond
      | Unhandled -> walk rest)
  in
  walk chain

(* --- extension points --------------------------------------------------- *)

let register_syscall t num f =
  if num < Sysno.first_extension then
    invalid_arg "Kernel.register_syscall: number reserved for the core";
  Hashtbl.replace t.ext_syscalls num f

let register_binfmt t ~name loader = t.binfmts <- t.binfmts @ [ (name, loader) ]

let block_syscall cpu cond =
  cpu.Cpu.pc <- cpu.Cpu.pc - 4;
  raise (Isa_blocked cond)

(* --- process table ------------------------------------------------------ *)

let find_proc t pid = Hashtbl.find_opt t.proc_table pid

let processes t =
  List.sort
    (fun a b -> compare a.Proc.pid b.Proc.pid)
    (Hashtbl.fold (fun _ p acc -> p :: acc) t.proc_table [])

let set_daemon t proc = Hashtbl.replace t.daemons proc.Proc.pid ()

let close_fds t pid =
  let doomed =
    Hashtbl.fold
      (fun (p, fd) _ acc -> if p = pid then (p, fd) :: acc else acc)
      t.fd_entries []
  in
  List.iter (Hashtbl.remove t.fd_entries) doomed

let release_locks t pid =
  let held = Hashtbl.fold (fun k holder acc -> if holder = pid then k :: acc else acc) t.locks [] in
  List.iter (Hashtbl.remove t.locks) held

let exit_proc t proc code =
  proc.Proc.state <- Proc.Zombie code;
  close_fds t proc.Proc.pid;
  release_locks t proc.Proc.pid

let kill t proc ~reason =
  Buffer.add_string t.console_buf
    (Printf.sprintf "[kernel] pid %d (%s) killed: %s\n" proc.Proc.pid proc.Proc.comm reason);
  exit_proc t proc (-1)

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let spawn_native t ?(name = "native") ?(env = []) ?(cwd = Path.root) body =
  let pid = fresh_pid t in
  let proc =
    {
      Proc.pid;
      parent = 0;
      space = As.create ();
      cwd;
      env;
      state = Proc.Runnable;
      body = Proc.Native { nstate = Proc.Done };
      brk = Layout.heap_base;
      comm = name;
    }
  in
  (match proc.Proc.body with
  | Proc.Native n -> n.Proc.nstate <- Proc.Not_started (fun () -> body t proc)
  | Proc.Isa _ -> assert false);
  Hashtbl.replace t.proc_table pid proc;
  proc

(* --- memory helpers ----------------------------------------------------- *)

let fault_of_exn = function
  | As.Fault { addr; access; reason } ->
    Some { f_addr = addr; f_access = access; f_reason = reason }
  | _ -> None

let pp_fault f =
  Printf.sprintf "%s fault at 0x%08x (%s)"
    (Format.asprintf "%a" Prot.pp_access f.f_access)
    f.f_addr
    (match f.f_reason with As.Unmapped -> "unmapped" | As.Protection -> "protection")

(* Checked access for native process code: retries through SIGSEGV
   delivery, blocking on Retry_when conditions. *)
let rec native_access : 'a. t -> Proc.t -> (unit -> 'a) -> 'a =
  fun t proc f ->
  try f () with
  | As.Fault _ as e -> (
    let fault = Option.get (fault_of_exn e) in
    match deliver_segv t proc fault with
    | Resolved -> native_access t proc f
    | Retry_when cond ->
      Proc.wait_until cond;
      native_access t proc f
    | Unhandled ->
      raise (Proc.Killed { pid = proc.Proc.pid; reason = pp_fault fault }))

(* Each checked access bills one instruction, so native workload code
   and ISA code are accounted on the same scale. *)
let tick () = Stats.global.instructions <- Stats.global.instructions + 1

let load_u8 t proc addr =
  tick ();
  native_access t proc (fun () -> As.load_u8 proc.Proc.space addr)

let load_u32 t proc addr =
  tick ();
  native_access t proc (fun () -> As.load_u32 proc.Proc.space addr)

let store_u8 t proc addr v =
  tick ();
  native_access t proc (fun () -> As.store_u8 proc.Proc.space addr v)

let store_u32 t proc addr v =
  tick ();
  native_access t proc (fun () -> As.store_u32 proc.Proc.space addr v)
let read_cstring t proc addr = native_access t proc (fun () -> As.read_cstring proc.Proc.space addr)

let write_cstring t proc addr s =
  native_access t proc (fun () ->
      String.iteri (fun i c -> As.store_u8 proc.Proc.space (addr + i) (Char.code c)) s;
      As.store_u8 proc.Proc.space (addr + String.length s) 0)

(* Bounded retry for faults taken while the kernel touches user memory on
   behalf of an ISA syscall (e.g. reading a path argument). *)
let isa_access t proc f =
  let rec go fuel =
    if fuel = 0 then raise (Isa_fatal "fault loop in syscall argument")
    else
      try f () with
      | As.Fault _ as e -> (
        let fault = Option.get (fault_of_exn e) in
        match deliver_segv t proc fault with
        | Resolved -> go (fuel - 1)
        | Retry_when _ | Unhandled ->
          raise (Isa_fatal ("fault in syscall argument: " ^ pp_fault fault)))
  in
  go 64

(* --- the new kernel calls ------------------------------------------------ *)

let sys_path_to_addr t proc path =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  Fs.addr_of_path t.fs ~cwd:proc.Proc.cwd path

let sys_addr_to_path t _proc addr =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  Fs.path_of_addr t.fs addr

let map_shared_file t proc ~path ~prot =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let base = Fs.addr_of_path t.fs ~cwd:proc.Proc.cwd path in
  let canonical = Fs.path_of_addr t.fs base in
  match As.mapping_at proc.Proc.space base with
  | Some _ -> base
  | None ->
    let seg = Fs.segment_of t.fs canonical in
    As.map proc.Proc.space ~base ~len:Layout.shared_slot_size ~seg ~prot
      ~share:As.Public ~label:canonical ();
    base

(* --- file descriptors ----------------------------------------------------- *)

let next_fd t pid =
  let n = Option.value ~default:3 (Hashtbl.find_opt t.next_fds pid) in
  Hashtbl.replace t.next_fds pid (n + 1);
  n

let sys_open t proc ?(create = false) ?(trunc = false) path =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  Stats.global.files_opened <- Stats.global.files_opened + 1;
  let cwd = proc.Proc.cwd in
  if create && not (Fs.exists t.fs ~cwd path) then Fs.create_file t.fs ~cwd path;
  let seg = Fs.segment_of t.fs ~cwd path in
  if trunc then Segment.resize seg 0;
  let fd = next_fd t proc.Proc.pid in
  Hashtbl.replace t.fd_entries (proc.Proc.pid, fd) { fe_seg = seg; fe_pos = 0 };
  fd

let sys_open_by_addr t proc addr =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  Stats.global.files_opened <- Stats.global.files_opened + 1;
  let path = Fs.path_of_addr t.fs addr in
  let seg = Fs.segment_of t.fs path in
  let fd = next_fd t proc.Proc.pid in
  Hashtbl.replace t.fd_entries (proc.Proc.pid, fd) { fe_seg = seg; fe_pos = 0 };
  fd

let fd_entry t proc fd =
  match Hashtbl.find_opt t.fd_entries (proc.Proc.pid, fd) with
  | Some e -> e
  | None -> raise (Os_error (Printf.sprintf "bad file descriptor %d" fd))

let sys_read t proc fd len =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let e = fd_entry t proc fd in
  let avail = max 0 (Segment.size e.fe_seg - e.fe_pos) in
  let n = min len avail in
  let out = Segment.blit_out e.fe_seg ~src_off:e.fe_pos ~len:n in
  e.fe_pos <- e.fe_pos + n;
  Stats.global.bytes_copied <- Stats.global.bytes_copied + n;
  out

let sys_write t proc fd b =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let e = fd_entry t proc fd in
  Segment.blit_in e.fe_seg ~dst_off:e.fe_pos b;
  e.fe_pos <- e.fe_pos + Bytes.length b;
  Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length b;
  Bytes.length b

let sys_lseek t proc fd pos =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let e = fd_entry t proc fd in
  if pos < 0 then raise (Os_error "lseek: negative offset");
  e.fe_pos <- pos

let sys_close t proc fd =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  if not (Hashtbl.mem t.fd_entries (proc.Proc.pid, fd)) then
    raise (Os_error (Printf.sprintf "bad file descriptor %d" fd));
  Hashtbl.remove t.fd_entries (proc.Proc.pid, fd)

(* --- file locks ------------------------------------------------------------ *)

let lock_key proc path = Path.to_string (Path.of_string ~cwd:proc.Proc.cwd path)

let try_flock t proc path =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let key = lock_key proc path in
  match Hashtbl.find_opt t.locks key with
  | Some holder when holder <> proc.Proc.pid -> false
  | Some _ -> true (* re-entrant *)
  | None ->
    Hashtbl.replace t.locks key proc.Proc.pid;
    true

let flock t proc path =
  let key = lock_key proc path in
  Proc.wait_until (fun () -> not (Hashtbl.mem t.locks key));
  ignore (try_flock t proc path)

let funlock t proc path =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let key = lock_key proc path in
  match Hashtbl.find_opt t.locks key with
  | Some holder when holder = proc.Proc.pid -> Hashtbl.remove t.locks key
  | Some _ -> raise (Os_error "funlock: not the lock holder")
  | None -> ()

let flock_holder t path = Hashtbl.find_opt t.locks (Path.to_string (Path.of_string ~cwd:Path.root path))

(* --- message queues ---------------------------------------------------------- *)

let msgq_create t name ~capacity =
  if Hashtbl.mem t.msgqs name then raise (Os_error ("msgq exists: " ^ name));
  Hashtbl.replace t.msgqs name { mq_queue = Queue.create (); mq_capacity = capacity }

let msgq_exists t name = Hashtbl.mem t.msgqs name

let get_msgq t name =
  match Hashtbl.find_opt t.msgqs name with
  | Some q -> q
  | None -> raise (Os_error ("no such msgq: " ^ name))

let msgq_length t name = Queue.length (get_msgq t name).mq_queue

let msg_send t _proc name b =
  let q = get_msgq t name in
  Proc.wait_until (fun () -> Queue.length q.mq_queue < q.mq_capacity);
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  Stats.global.messages_sent <- Stats.global.messages_sent + 1;
  Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length b;
  Queue.add (Bytes.copy b) q.mq_queue

let msg_recv t _proc name =
  let q = get_msgq t name in
  Proc.wait_until (fun () -> not (Queue.is_empty q.mq_queue));
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let b = Queue.take q.mq_queue in
  Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length b;
  b

let msg_try_recv t _proc name =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  let q = get_msgq t name in
  if Queue.is_empty q.mq_queue then None
  else begin
    let b = Queue.take q.mq_queue in
    Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length b;
    Some b
  end

(* --- exec / fork -------------------------------------------------------------- *)

let stack_bytes = 256 * 1024

let map_stack t proc =
  ignore t;
  let seg =
    Segment.create ~name:(Printf.sprintf "stack:%d" proc.Proc.pid) ~max_size:stack_bytes ()
  in
  As.map proc.Proc.space ~base:(Layout.stack_limit - stack_bytes) ~len:stack_bytes ~seg
    ~prot:Prot.Read_write ~share:As.Private ~label:"stack" ()

let exec t proc path =
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  (* Signal dispositions are reset across exec, as in Unix. *)
  Hashtbl.remove t.segv_handlers proc.Proc.pid;
  let image = Fs.read_file t.fs ~cwd:proc.Proc.cwd path in
  let rec try_loaders = function
    | [] -> raise (Os_error (Printf.sprintf "exec %s: unrecognised format" path))
    | (_, loader) :: rest -> (
      proc.Proc.space <- As.create ();
      match loader t proc image ~path with
      | entry -> entry
      | exception Wrong_format -> try_loaders rest)
  in
  let entry = try_loaders t.binfmts in
  map_stack t proc;
  proc.Proc.brk <- Layout.heap_base;
  proc.Proc.comm <- path;
  let cpu = Cpu.create ~entry ~sp:(Layout.stack_limit - 64) in
  proc.Proc.body <- Proc.Isa cpu;
  proc.Proc.state <- Proc.Runnable

let spawn_blank t ?(name = "blank") ?(env = []) ?(cwd = Path.root) () =
  let proc = spawn_native t ~name ~env ~cwd (fun _ _ -> 0) in
  proc.Proc.state <- Proc.Blocked (fun () -> false);
  proc

let set_isa_entry t proc ~entry =
  (match As.mapping_at proc.Proc.space (Layout.stack_limit - stack_bytes) with
  | Some _ -> ()
  | None -> map_stack t proc);
  let cpu = Cpu.create ~entry ~sp:(Layout.stack_limit - 64) in
  proc.Proc.body <- Proc.Isa cpu;
  proc.Proc.state <- Proc.Runnable

let spawn_exec t ?(name = "a.out") ?(env = []) ?(cwd = Path.root) path =
  let proc = spawn_native t ~name ~env ~cwd (fun _ _ -> 0) in
  exec t proc path;
  proc

let fork_isa t proc =
  match proc.Proc.body with
  | Proc.Native _ -> raise (Os_error "fork: only ISA processes can fork")
  | Proc.Isa cpu ->
    Stats.global.syscalls <- Stats.global.syscalls + 1;
    let pid = fresh_pid t in
    let child_cpu = Cpu.fork cpu in
    let child =
      {
        Proc.pid;
        parent = proc.Proc.pid;
        space = As.clone proc.Proc.space;
        cwd = proc.Proc.cwd;
        env = proc.Proc.env;
        state = Proc.Runnable;
        body = Proc.Isa child_cpu;
        brk = proc.Proc.brk;
        comm = proc.Proc.comm;
      }
    in
    (* The child inherits the parent's signal dispositions. *)
    (match Hashtbl.find_opt t.segv_handlers proc.Proc.pid with
    | Some chain -> Hashtbl.replace t.segv_handlers pid chain
    | None -> ());
    Hashtbl.replace t.proc_table pid child;
    List.iter (fun hook -> hook ~parent:proc ~child) t.fork_hooks;
    child

let children t pid =
  List.filter (fun p -> p.Proc.parent = pid) (processes t)

let reap t proc =
  let kids = children t proc.Proc.pid in
  match List.find_opt Proc.is_zombie kids with
  | Some z -> (
    match z.Proc.state with
    | Proc.Zombie code ->
      Hashtbl.remove t.proc_table z.Proc.pid;
      Hashtbl.remove t.segv_handlers z.Proc.pid;
      Hashtbl.remove t.daemons z.Proc.pid;
      Some (z.Proc.pid, code)
    | Proc.Runnable | Proc.Blocked _ -> assert false)
  | None -> None

let waitpid t proc =
  if children t proc.Proc.pid = [] then raise (Os_error "waitpid: no children");
  Proc.wait_until (fun () -> List.exists Proc.is_zombie (children t proc.Proc.pid));
  Stats.global.syscalls <- Stats.global.syscalls + 1;
  Option.get (reap t proc)

(* --- ISA syscall dispatch -------------------------------------------------------- *)

let sbrk t proc bytes =
  let old = proc.Proc.brk in
  if bytes > 0 then begin
    let len = Layout.page_up bytes in
    if proc.Proc.brk + len > Layout.heap_limit then raise (Os_error "sbrk: out of heap");
    let seg =
      Segment.create ~name:(Printf.sprintf "heap:%d:0x%x" proc.Proc.pid old) ~max_size:len ()
    in
    Segment.resize seg len;
    As.map proc.Proc.space ~base:old ~len ~seg ~prot:Prot.Read_write ~share:As.Private
      ~label:"heap" ();
    proc.Proc.brk <- old + len
  end;
  ignore t;
  old

let dispatch t proc cpu =
  let v0 = Cpu.reg cpu Reg.v0 in
  let a0 = Cpu.reg cpu Reg.a0 in
  let a1 = Cpu.reg cpu Reg.a1 in
  let a2 = Cpu.reg cpu Reg.a2 in
  if v0 = Sysno.exit then raise (Isa_exit (Codec.sext32 a0))
  else if v0 = Sysno.fork then begin
    let child = fork_isa t proc in
    (match child.Proc.body with
    | Proc.Isa child_cpu -> Cpu.set_reg child_cpu Reg.v0 0
    | Proc.Native _ -> assert false);
    Cpu.set_reg cpu Reg.v0 child.Proc.pid
  end
  else if v0 = Sysno.wait then begin
    if children t proc.Proc.pid = [] then Cpu.set_reg cpu Reg.v0 0xFFFF_FFFF
    else
      match reap t proc with
      | Some (pid, code) ->
        Cpu.set_reg cpu Reg.v0 pid;
        Cpu.set_reg cpu Reg.v1 code
      | None ->
        (* Block and retry the syscall: rewind past the trap. *)
        cpu.Cpu.pc <- cpu.Cpu.pc - 4;
        raise
          (Isa_blocked
             (fun () -> List.exists Proc.is_zombie (children t proc.Proc.pid)))
  end
  else if v0 = Sysno.getpid then Cpu.set_reg cpu Reg.v0 proc.Proc.pid
  else if v0 = Sysno.yield then raise Isa_yield
  else if v0 = Sysno.sbrk then Cpu.set_reg cpu Reg.v0 (sbrk t proc a0)
  else if v0 = Sysno.print_int then
    Buffer.add_string t.console_buf (string_of_int (Codec.sext32 a0))
  else if v0 = Sysno.print_str then
    Buffer.add_string t.console_buf
      (isa_access t proc (fun () -> As.read_cstring proc.Proc.space a0))
  else if v0 = Sysno.path_to_addr then begin
    let path = isa_access t proc (fun () -> As.read_cstring proc.Proc.space a0) in
    match Fs.addr_of_path t.fs ~cwd:proc.Proc.cwd path with
    | addr -> Cpu.set_reg cpu Reg.v0 addr
    | exception Fs.Error _ -> Cpu.set_reg cpu Reg.v0 0
  end
  else if v0 = Sysno.addr_to_path then begin
    match Fs.path_of_addr t.fs a0 with
    | path ->
      let truncated = String.sub path 0 (min (String.length path) (max 0 (a2 - 1))) in
      isa_access t proc (fun () ->
          String.iteri
            (fun i c -> As.store_u8 proc.Proc.space (a1 + i) (Char.code c))
            truncated;
          As.store_u8 proc.Proc.space (a1 + String.length truncated) 0);
      Cpu.set_reg cpu Reg.v0 (String.length truncated)
    | exception Fs.Error _ -> Cpu.set_reg cpu Reg.v0 0xFFFF_FFFF
  end
  else
    match Hashtbl.find_opt t.ext_syscalls v0 with
    | Some f -> f t proc cpu
    | None -> raise (Isa_fatal (Printf.sprintf "bad syscall %d" v0))

(* --- scheduler --------------------------------------------------------------------- *)

let quantum = 4000

let run_isa_quantum t proc cpu =
  match Cpu.run ~fuel:quantum cpu proc.Proc.space ~syscall:(dispatch t proc) with
  | Cpu.Halted code -> exit_proc t proc code
  | Cpu.Running -> ()
  | exception Isa_exit code -> exit_proc t proc code
  | exception Isa_yield -> ()
  | exception Isa_blocked cond -> proc.Proc.state <- Proc.Blocked cond
  | exception Isa_fatal msg -> kill t proc ~reason:msg
  | exception Cpu.Cpu_error { pc; msg } ->
    kill t proc ~reason:(Printf.sprintf "cpu error at 0x%08x: %s" pc msg)
  | exception Os_error msg -> kill t proc ~reason:msg
  | exception (As.Fault _ as e) -> (
    let fault = Option.get (fault_of_exn e) in
    match deliver_segv t proc fault with
    | Resolved -> () (* pc still points at the faulting instruction *)
    | Retry_when cond -> proc.Proc.state <- Proc.Blocked cond
    | Unhandled -> kill t proc ~reason:(pp_fault fault))

let resume_native t proc n =
  let handler =
    {
      Effect.Deep.retc = (fun code -> Proc.Finished code);
      exnc =
        (fun e ->
          match e with Proc.Exit_proc code -> Proc.Finished code | e -> Proc.Crashed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Proc.Yield ->
            Some
              (fun (k : (a, Proc.outcome) Effect.Deep.continuation) ->
                n.Proc.nstate <- Proc.Suspended k;
                Proc.Paused)
          | Proc.Wait_until cond ->
            Some
              (fun (k : (a, Proc.outcome) Effect.Deep.continuation) ->
                n.Proc.nstate <- Proc.Suspended k;
                proc.Proc.state <- Proc.Blocked cond;
                Proc.Paused)
          | _ -> None);
    }
  in
  let outcome =
    match n.Proc.nstate with
    | Proc.Not_started f ->
      n.Proc.nstate <- Proc.Done;
      Effect.Deep.match_with f () handler
    | Proc.Suspended k ->
      n.Proc.nstate <- Proc.Done;
      Effect.Deep.continue k ()
    | Proc.Done -> Proc.Finished 0
  in
  match outcome with
  | Proc.Finished code -> exit_proc t proc code
  | Proc.Crashed (Proc.Killed { reason; _ }) -> kill t proc ~reason
  | Proc.Crashed e -> kill t proc ~reason:("uncaught exception: " ^ Printexc.to_string e)
  | Proc.Paused -> ()

let run_one t proc =
  t.tick_count <- t.tick_count + 1;
  Stats.global.context_switches <- Stats.global.context_switches + 1;
  match proc.Proc.body with
  | Proc.Isa cpu -> run_isa_quantum t proc cpu
  | Proc.Native n -> resume_native t proc n

let unblock_pass t =
  List.iter
    (fun p ->
      match p.Proc.state with
      | Proc.Blocked cond when cond () -> p.Proc.state <- Proc.Runnable
      | Proc.Blocked _ | Proc.Runnable | Proc.Zombie _ -> ())
    (processes t)

let blocked_nondaemons t =
  List.filter
    (fun p ->
      (match p.Proc.state with Proc.Blocked _ -> true | Proc.Runnable | Proc.Zombie _ -> false)
      && not (Hashtbl.mem t.daemons p.Proc.pid))
    (processes t)

let step t =
  unblock_pass t;
  let runnable = List.filter (fun p -> p.Proc.state = Proc.Runnable) (processes t) in
  match runnable with
  | [] -> if blocked_nondaemons t = [] then `Done else `Idle
  | ps ->
    List.iter (fun p -> if p.Proc.state = Proc.Runnable then run_one t p) ps;
    `Progress

let run ?(max_ticks = 2_000_000) t =
  let deadline = t.tick_count + max_ticks in
  let rec loop () =
    if t.tick_count > deadline then raise (Os_error "Kernel.run: tick budget exhausted");
    match step t with
    | `Progress -> loop ()
    | `Done -> ()
    | `Idle ->
      raise
        (Deadlock
           (String.concat ", "
              (List.map
                 (fun p -> Printf.sprintf "pid %d (%s)" p.Proc.pid p.Proc.comm)
                 (blocked_nondaemons t))))
  in
  loop ()

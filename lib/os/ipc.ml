module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault

type msgq = { mq_queue : Bytes.t Queue.t; mq_capacity : int }

(* The service entry runs against the kernel, so the table is parametric
   over the kernel type ('k = Kernel.t) to keep this layer below it. *)
type 'k pd_service = { pd_owner : Proc.t; pd_entry : 'k -> Proc.t -> int -> int }

type 'k t = {
  msgqs : (string, msgq) Hashtbl.t;
  pd_services : (string, 'k pd_service) Hashtbl.t;
}

let create () = { msgqs = Hashtbl.create 8; pd_services = Hashtbl.create 8 }

(* --- message queues ---------------------------------------------------- *)

let msgq_create t name ~capacity =
  if Hashtbl.mem t.msgqs name then Error Errno.EEXIST
  else begin
    Hashtbl.replace t.msgqs name { mq_queue = Queue.create (); mq_capacity = capacity };
    Ok ()
  end

let msgq_exists t name = Hashtbl.mem t.msgqs name

let find_msgq t name =
  match Hashtbl.find_opt t.msgqs name with
  | Some q -> Ok q
  | None -> Error Errno.ENOENT

let msgq_length t name = Result.map (fun q -> Queue.length q.mq_queue) (find_msgq t name)

(* Blocking send/recv: native processes only (they wait through the
   scheduler's effect). *)

let msg_send t name b =
  match find_msgq t name with
  | Error err -> Error err
  | Ok q -> (
    match Fault.hit "ipc.send" with
    | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)
    | () ->
    Proc.wait_until
      ~why:(Printf.sprintf "msgq %s not full" name)
      (fun () -> Queue.length q.mq_queue < q.mq_capacity);
    (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
    (Stats.cur ()).messages_sent <- (Stats.cur ()).messages_sent + 1;
    (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Bytes.length b;
    Queue.add (Bytes.copy b) q.mq_queue;
    Ok ())

(* Non-blocking enqueue for deliveries that originate outside any
   process context — the cluster's network pump runs on the scheduler
   loop, where [Proc.wait_until]'s effect has no handler.  Performs no
   billing: the {e sender's} machine accounts for the transfer when the
   enqueue succeeds.  [Error EAGAIN] when the queue is full, so the
   caller can keep the message pending (backpressure) instead of
   dropping it. *)
let msg_enqueue t name b =
  match find_msgq t name with
  | Error err -> Error err
  | Ok q ->
    if Queue.length q.mq_queue >= q.mq_capacity then Error Errno.EAGAIN
    else begin
      Queue.add (Bytes.copy b) q.mq_queue;
      Ok ()
    end

let msg_recv t name =
  match find_msgq t name with
  | Error err -> Error err
  | Ok q ->
    Proc.wait_until
      ~why:(Printf.sprintf "msgq %s non-empty" name)
      (fun () -> not (Queue.is_empty q.mq_queue));
    (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
    let b = Queue.take q.mq_queue in
    (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Bytes.length b;
    Ok b

let msg_try_recv t name =
  match find_msgq t name with
  | Error err -> Error err
  | Ok q ->
    (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
    if Queue.is_empty q.mq_queue then Ok None
    else begin
      let b = Queue.take q.mq_queue in
      (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Bytes.length b;
      Ok (Some b)
    end

(* --- protection-domain calls ------------------------------------------- *)

let register_pd_service t ~name ~owner pd_entry =
  if Hashtbl.mem t.pd_services name then Error Errno.EEXIST
  else begin
    Hashtbl.replace t.pd_services name { pd_owner = owner; pd_entry };
    Ok ()
  end

let pd_call t kernel ~service arg =
  match Hashtbl.find_opt t.pd_services service with
  | None -> Error Errno.ENOENT
  | Some { pd_owner; pd_entry } ->
    (* Transient EAGAIN (only ever injected) gets a bounded, deterministic
       retry: the backoff is billed as spin instructions so the cost is
       visible in the simulated cycle count of faulted runs — and absent
       from unfaulted ones. *)
    let max_attempts = 4 in
    let rec attempt n =
      match Fault.hit "ipc.send" with
      | exception Fault.Injected { failure = Hemlock_util.Fault.Eagain; _ }
        when n < max_attempts - 1 ->
        (Stats.cur ()).ipc_retries <- (Stats.cur ()).ipc_retries + 1;
        (Stats.cur ()).instructions <- (Stats.cur ()).instructions + (50 lsl n);
        attempt (n + 1)
      | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)
      | () ->
        (* One trap, two domain switches (in and out), no copying: the
           handler runs against the server's address space while the
           caller is suspended. *)
        (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
        (Stats.cur ()).context_switches <- (Stats.cur ()).context_switches + 2;
        Ok (pd_entry kernel pd_owner arg)
    in
    attempt 0

(** The simulated campus network between {!Cluster.broadcast} and the
    mailbox drain — deterministic unreliability.

    The paper's rwhod ran over a network where packets vanished, arrived
    late, arrived twice, and whole wings of the building fell off the
    backbone.  This module reproduces those failure modes from a seed:
    every link transmission draws loss, latency (in cluster rounds) and
    duplication from the {e sender's} private [Prng.stream], so a
    machine's draws depend only on its own send sequence — never on how
    machines are spread over domains — and one seed reproduces the same
    delivery trace at every domain count.

    Reordering needs no extra machinery: variable latency plus the
    drain's (maturity, sender, seq) sort yields it naturally.

    Profiles ([HEMLOCK_NET_PROFILE], default [ideal]):
    - [ideal] — the loss-free one-round bus the cluster always had.
      Consumes {e no} PRNG draws; behaviour and billed costs are
      byte-identical to the pre-network cluster.
    - [lan]   — 1–2 round latency, 0.2% loss, 0.1% duplication.
    - [wan]   — 2–6 round latency, 1% loss, 0.5% duplication.
    - [lossy] — 1–8 round latency, 15% loss, 3% duplication.

    Named partitions ({!partition}/{!heal}) drop traffic between groups
    at send time.  Telemetry (sent/delivered/dropped/duplicated and a
    delivery-latency histogram) is kept in per-machine cells so that
    each cell is only ever touched by the domain its machine is pinned
    to; {!telemetry} merges them in machine order. *)

type profile = Ideal | Lan | Wan | Lossy

val profile_to_string : profile -> string

(** @raise Invalid_argument on an unknown name. *)
val profile_of_string : string -> profile

(** [HEMLOCK_NET_PROFILE], default [Ideal]. *)
val profile_from_env : unit -> profile

(** [HEMLOCK_NET_SEED], default 1. *)
val seed_from_env : unit -> int

type t

(** [create ~machines ~profile ~seed] — one sender stream per machine
    ([Prng.stream ~seed ~index:machine]). *)
val create : machines:int -> profile:profile -> seed:int -> t

val profile : t -> profile

(** [transmit t ~from ~dst] decides one link transmission's fate:
    [[]] if the datagram is lost (profile loss or an active partition),
    otherwise the latency in rounds of each copy to enqueue (head =
    original, tail = network-injected duplicates; every latency ≥ 1).
    Records send-side telemetry on [from]'s cell.  Under [Ideal] this
    is always [[1]] and consumes no draws. *)
val transmit : t -> from:int -> dst:int -> int list

(** Record a datagram lost to an injected [net.send] fault (no draws
    consumed; the link fault preempts the profile's coin flips). *)
val drop_at_send : t -> from:int -> unit

(** Record a matured datagram lost to an injected [net.deliver] fault. *)
val drop_at_deliver : t -> dst:int -> unit

(** Record a datagram landing in [dst]'s inbox after [rounds] of
    latency. *)
val delivered : t -> dst:int -> rounds:int -> unit

(** [partition t ~name ~groups] installs (or replaces) a named
    partition: machines in different groups cannot exchange datagrams
    while it is active.  Machines not listed in any group form one
    implicit extra group.  Call only while the cluster is quiescent. *)
val partition : t -> name:string -> groups:int list list -> unit

(** Remove a named partition (no-op if absent). *)
val heal : t -> name:string -> unit

val heal_all : t -> unit

(** Is traffic between these two machines currently blocked? *)
val partitioned : t -> int -> int -> bool

type telemetry = {
  t_sent : int;  (** link transmissions attempted (per destination) *)
  t_delivered : int;  (** datagrams that landed in an inbox *)
  t_dropped : int;  (** lost: profile loss, partition, or injected fault *)
  t_duplicated : int;  (** extra copies the network injected *)
  t_latency : int array;  (** histogram: [t_latency.(r)] deliveries after [r] rounds *)
}

(** Cluster-wide totals, merged over the per-machine cells in machine
    order. *)
val telemetry : t -> telemetry

val reset_telemetry : t -> unit

(** [percentile tel p] is the smallest latency (rounds) covering [p]%
    of deliveries — 0 when nothing was delivered. *)
val percentile : telemetry -> int -> int

(** Process records and the cooperative-scheduling effects.

    A process is either an {b ISA} process (a {!Hemlock_isa.Cpu.t}
    stepped by the kernel's scheduler, quantum by quantum) or a {b
    native} process (an OCaml closure run under an effect handler, used
    for daemons and workload harness code).  Native processes block and
    yield by performing the effects below; the kernel's scheduler
    captures the continuation.

    In the paper's terms a process is a protection domain: its
    {!Hemlock_vm.Address_space.t} has overloaded private mappings plus
    the globally-consistent public region. *)

type state =
  | Runnable
  | Blocked of { cond : unit -> bool; why : string }
      (** runnable again when [cond] holds; [why] is the human-readable
          wait reason surfaced by deadlock diagnostics *)
  | Zombie of int  (** exited with code, not yet reaped *)

type outcome = Finished of int | Crashed of exn | Paused

type nstate =
  | Not_started of (unit -> int)
  | Suspended of (unit, outcome) Effect.Deep.continuation
  | Done

type native = { mutable nstate : nstate }

type body = Isa of Hemlock_isa.Cpu.t | Native of native

type t = {
  pid : int;
  mutable parent : int;
  mutable space : Hemlock_vm.Address_space.t;
  mutable cwd : Hemlock_sfs.Path.t;
  mutable env : (string * string) list;
  mutable state : state;
  mutable body : body;
  mutable brk : int;  (** heap break for sbrk *)
  mutable comm : string;  (** command name, for diagnostics *)
}

(** Performed by native process code to let others run. *)
type _ Effect.t += Yield : unit Effect.t

(** Performed to block until a condition becomes true; [why] labels the
    wait for deadlock reports. *)
type _ Effect.t += Wait_until : { cond : unit -> bool; why : string } -> unit Effect.t

(** Raised (or performed) by native bodies to terminate. *)
exception Exit_proc of int

(** Raised into native code when an unhandled fault kills the process. *)
exception Killed of { pid : int; reason : string }

val yield : unit -> unit

(** [wait_until ?why cond] blocks the calling native process until
    [cond] holds.  [why] (default ["wait_until"]) appears in
    {!Sched.Deadlock} diagnostics if the wait never ends. *)
val wait_until : ?why:string -> (unit -> bool) -> unit

val is_zombie : t -> bool

(** Environment-variable access ([getenv]/[setenv]). *)
val getenv : t -> string -> string option

val setenv : t -> string -> string -> unit

module Fs = Hemlock_sfs.Fs

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | ENOEXEC
  | ENXIO
  | EIO
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | ESPIPE
  | EDEADLK
  | ENOSYS
  | ENOTEMPTY
  | ELOOP
  | ETIMEDOUT

(* Linux numbering, so the negative-v0 values ISA programs observe match
   what a Unix programmer expects. *)
let code = function
  | EPERM -> 1
  | ENOENT -> 2
  | ESRCH -> 3
  | ENOEXEC -> 8
  | ENXIO -> 6
  | EIO -> 5
  | EBADF -> 9
  | ECHILD -> 10
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EBUSY -> 16
  | EEXIST -> 17
  | EXDEV -> 18
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | EMFILE -> 24
  | ENOSPC -> 28
  | ESPIPE -> 29
  | EDEADLK -> 35
  | ENOSYS -> 38
  | ENOTEMPTY -> 39
  | ELOOP -> 40
  | ETIMEDOUT -> 110

let all =
  [
    EPERM; ENOENT; ESRCH; EIO; ENXIO; ENOEXEC; EBADF; ECHILD; EAGAIN; ENOMEM; EACCES;
    EFAULT; EBUSY; EEXIST; EXDEV; ENOTDIR; EISDIR; EINVAL; EMFILE; ENOSPC;
    ESPIPE; EDEADLK; ENOSYS; ENOTEMPTY; ELOOP; ETIMEDOUT;
  ]

let name = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | ENOEXEC -> "ENOEXEC"
  | ENXIO -> "ENXIO"
  | EIO -> "EIO"
  | EBADF -> "EBADF"
  | ECHILD -> "ECHILD"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EBUSY -> "EBUSY"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | ESPIPE -> "ESPIPE"
  | EDEADLK -> "EDEADLK"
  | ENOSYS -> "ENOSYS"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ELOOP -> "ELOOP"
  | ETIMEDOUT -> "ETIMEDOUT"

let message = function
  | EPERM -> "operation not permitted"
  | ENOENT -> "no such file or directory"
  | ESRCH -> "no such process"
  | ENOEXEC -> "exec format error"
  | ENXIO -> "no such device or address"
  | EIO -> "input/output error"
  | EBADF -> "bad file descriptor"
  | ECHILD -> "no child processes"
  | EAGAIN -> "resource temporarily unavailable"
  | ENOMEM -> "cannot allocate memory"
  | EACCES -> "permission denied"
  | EFAULT -> "bad address"
  | EBUSY -> "device or resource busy"
  | EEXIST -> "file exists"
  | EXDEV -> "invalid cross-device link"
  | ENOTDIR -> "not a directory"
  | EISDIR -> "is a directory"
  | EINVAL -> "invalid argument"
  | EMFILE -> "too many open files"
  | ENOSPC -> "no space left on device"
  | ESPIPE -> "illegal seek"
  | EDEADLK -> "resource deadlock avoided"
  | ENOSYS -> "function not implemented"
  | ENOTEMPTY -> "directory not empty"
  | ELOOP -> "too many levels of symbolic links"
  | ETIMEDOUT -> "connection timed out"

let of_code n = List.find_opt (fun e -> code e = n) all

let of_failure = function
  | Hemlock_util.Fault.Eio -> EIO
  | Hemlock_util.Fault.Enospc -> ENOSPC
  | Hemlock_util.Fault.Eagain -> EAGAIN

let of_fs_kind = function
  | Fs.Not_found -> ENOENT
  | Fs.Not_a_directory -> ENOTDIR
  | Fs.Is_a_directory -> EISDIR
  | Fs.Already_exists -> EEXIST
  | Fs.No_space -> ENOSPC
  | Fs.Not_shared -> ENXIO
  | Fs.Hard_links_prohibited -> EPERM
  | Fs.Symlink_loop -> ELOOP
  | Fs.Not_empty -> ENOTEMPTY
  | Fs.Cross_partition -> EXDEV

let to_string e = Printf.sprintf "%s: %s" (name e) (message e)

let pp ppf e = Format.pp_print_string ppf (to_string e)

module Prng = Hemlock_util.Prng
module Stats = Hemlock_util.Stats

type profile = Ideal | Lan | Wan | Lossy

let profile_to_string = function
  | Ideal -> "ideal"
  | Lan -> "lan"
  | Wan -> "wan"
  | Lossy -> "lossy"

let profile_of_string = function
  | "ideal" -> Ideal
  | "lan" -> Lan
  | "wan" -> Wan
  | "lossy" -> Lossy
  | s -> invalid_arg (Printf.sprintf "Net.profile_of_string: unknown profile %S" s)

let profile_from_env () =
  match Sys.getenv_opt "HEMLOCK_NET_PROFILE" with
  | None | Some "" -> Ideal
  | Some s -> profile_of_string (String.trim s)

let seed_from_env () =
  match Option.bind (Sys.getenv_opt "HEMLOCK_NET_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 1

(* Loss and duplication are per-mille probabilities; latency is uniform
   in [lat_min, lat_max] rounds.  [Ideal] must stay draw-free so the
   default profile is bit-for-bit the old loss-free bus. *)
type params = { lat_min : int; lat_max : int; drop_pm : int; dup_pm : int }

let params_of = function
  | Ideal -> { lat_min = 1; lat_max = 1; drop_pm = 0; dup_pm = 0 }
  | Lan -> { lat_min = 1; lat_max = 2; drop_pm = 2; dup_pm = 1 }
  | Wan -> { lat_min = 2; lat_max = 6; drop_pm = 10; dup_pm = 5 }
  | Lossy -> { lat_min = 1; lat_max = 8; drop_pm = 150; dup_pm = 30 }

(* The histogram tops out well above any profile's latency; retried
   traffic cannot exceed it either because latencies are per-link. *)
let max_latency = 63

(* One cell per machine.  Send-side fields are only touched from the
   sending machine's domain, delivery-side fields only from the
   receiving machine's domain — and a machine is pinned to one domain
   per run, so the cells need no locks. *)
type cell = {
  mutable c_sent : int;
  mutable c_delivered : int;
  mutable c_dropped : int;
  mutable c_duplicated : int;
  c_latency : int array;
}

type t = {
  net_profile : profile;
  params : params;
  machines : int;
  senders : Prng.t array;
  cells : cell array;
  (* name -> group id per machine; -1 marks the implicit rest-group.
     Written only while the cluster is quiescent, read during sends. *)
  mutable parts : (string * int array) list;
}

let create ~machines ~profile ~seed =
  if machines <= 0 then invalid_arg "Net.create: need at least one machine";
  {
    net_profile = profile;
    params = params_of profile;
    machines;
    senders = Array.init machines (fun i -> Prng.stream ~seed ~index:i);
    cells =
      Array.init machines (fun _ ->
          {
            c_sent = 0;
            c_delivered = 0;
            c_dropped = 0;
            c_duplicated = 0;
            c_latency = Array.make (max_latency + 1) 0;
          });
    parts = [];
  }

let profile t = t.net_profile

(* ----- partitions ----- *)

let partition t ~name ~groups =
  let g = Array.make t.machines (-1) in
  List.iteri
    (fun gi members ->
      List.iter
        (fun m ->
          if m < 0 || m >= t.machines then invalid_arg "Net.partition: no such machine";
          g.(m) <- gi)
        members)
    groups;
  t.parts <- (name, g) :: List.remove_assoc name t.parts

let heal t ~name = t.parts <- List.remove_assoc name t.parts

let heal_all t = t.parts <- []

let partitioned t a b = List.exists (fun (_, g) -> g.(a) <> g.(b)) t.parts

(* ----- the per-link fate decision ----- *)

let transmit t ~from ~dst =
  let c = t.cells.(from) in
  c.c_sent <- c.c_sent + 1;
  let p = t.params in
  if partitioned t from dst then begin
    c.c_dropped <- c.c_dropped + 1;
    let st = Stats.cur () in
    st.net_dropped <- st.net_dropped + 1;
    []
  end
  else if p.drop_pm = 0 && p.dup_pm = 0 && p.lat_min = p.lat_max then
    (* the draw-free fast path: [Ideal] never touches the stream *)
    [ p.lat_min ]
  else begin
    let rng = t.senders.(from) in
    if Prng.int rng 1000 < p.drop_pm then begin
      c.c_dropped <- c.c_dropped + 1;
      let st = Stats.cur () in
      st.net_dropped <- st.net_dropped + 1;
      []
    end
    else begin
      let latency () =
        if p.lat_max = p.lat_min then p.lat_min
        else p.lat_min + Prng.int rng (p.lat_max - p.lat_min + 1)
      in
      let first = latency () in
      if Prng.int rng 1000 < p.dup_pm then begin
        c.c_duplicated <- c.c_duplicated + 1;
        let st = Stats.cur () in
        st.net_duplicated <- st.net_duplicated + 1;
        [ first; latency () ]
      end
      else [ first ]
    end
  end

let drop_at_send t ~from =
  let c = t.cells.(from) in
  c.c_sent <- c.c_sent + 1;
  c.c_dropped <- c.c_dropped + 1;
  let st = Stats.cur () in
  st.net_dropped <- st.net_dropped + 1

let drop_at_deliver t ~dst =
  let c = t.cells.(dst) in
  c.c_dropped <- c.c_dropped + 1;
  let st = Stats.cur () in
  st.net_dropped <- st.net_dropped + 1

let delivered t ~dst ~rounds =
  let c = t.cells.(dst) in
  c.c_delivered <- c.c_delivered + 1;
  c.c_latency.(min rounds max_latency) <- c.c_latency.(min rounds max_latency) + 1;
  let st = Stats.cur () in
  st.net_delivered <- st.net_delivered + 1

(* ----- telemetry ----- *)

type telemetry = {
  t_sent : int;
  t_delivered : int;
  t_dropped : int;
  t_duplicated : int;
  t_latency : int array;
}

let telemetry t =
  let acc =
    {
      t_sent = 0;
      t_delivered = 0;
      t_dropped = 0;
      t_duplicated = 0;
      t_latency = Array.make (max_latency + 1) 0;
    }
  in
  Array.fold_left
    (fun acc c ->
      Array.iteri (fun i n -> acc.t_latency.(i) <- acc.t_latency.(i) + n) c.c_latency;
      {
        acc with
        t_sent = acc.t_sent + c.c_sent;
        t_delivered = acc.t_delivered + c.c_delivered;
        t_dropped = acc.t_dropped + c.c_dropped;
        t_duplicated = acc.t_duplicated + c.c_duplicated;
      })
    acc t.cells

let reset_telemetry t =
  Array.iter
    (fun c ->
      c.c_sent <- 0;
      c.c_delivered <- 0;
      c.c_dropped <- 0;
      c.c_duplicated <- 0;
      Array.fill c.c_latency 0 (Array.length c.c_latency) 0)
    t.cells

let percentile tel p =
  let total = Array.fold_left ( + ) 0 tel.t_latency in
  if total = 0 then 0
  else begin
    (* smallest latency whose cumulative count reaches the p-th rank *)
    let target = min total (max 1 ((total * p + 99) / 100)) in
    let rec walk i seen =
      if i > max_latency then max_latency
      else
        let seen = seen + tel.t_latency.(i) in
        if seen >= target then i else walk (i + 1) seen
    in
    walk 0 0
  end

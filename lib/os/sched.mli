(** The scheduler: process table, pids, daemons, the round-robin run
    loop, and deadlock detection.

    What a quantum {e does} (stepping an ISA cpu, resuming a native
    continuation) stays in {!Kernel}; this layer decides {e who} runs,
    wakes blocked processes whose conditions hold, and diagnoses the
    idle-but-blocked state as a structured deadlock. *)

(** One stuck process in a deadlock report. *)
type blocked = { b_pid : int; b_comm : string; b_why : string }

(** Non-daemon processes are blocked and nothing can wake them.  A
    printer is registered, so an uncaught [Deadlock] shows
    {!deadlock_message} rather than an opaque payload. *)
exception Deadlock of blocked list

(** ["pid 4 (waiter) waiting on flock /tmp/l, pid 7 (…) …"] *)
val deadlock_message : blocked list -> string

type t

val create : unit -> t
val fresh_pid : t -> int
val add : t -> Proc.t -> unit

(** Forget a pid entirely (reaping); also clears daemon status. *)
val remove : t -> int -> unit

val find : t -> int -> Proc.t option

(** All processes, sorted by pid — the round-robin order. *)
val processes : t -> Proc.t list

val set_daemon : t -> Proc.t -> unit
val is_daemon : t -> int -> bool

(** Monotonic count of quanta handed out. *)
val ticks : t -> int

(** Blocked non-daemons with their wait reasons (the deadlock set when
    nothing is runnable). *)
val blocked_nondaemons : t -> blocked list

(** One pass: wake what can wake, then give every runnable process a
    quantum via [run_one].  [`Progress] — something ran; [`Idle] —
    nothing runnable but non-daemons are blocked; [`Done] — only
    zombies and blocked daemons remain. *)
val step : t -> run_one:(Proc.t -> unit) -> [ `Progress | `Idle | `Done ]

(** Like {!step}, but billing for {e every} dispatched quantum (ticks
    and context switches) happens up front on the calling domain, and
    [run_many] then executes the whole runnable batch — the kernel
    decides how to spread it over domains.  Totals match the
    sequential pass for any partition. *)
val step_par : t -> run_many:(Proc.t list -> unit) -> [ `Progress | `Idle | `Done ]

(** Loop {!step} to completion.  [on_budget] is called when [max_ticks]
    quanta have been spent (it should raise).
    @raise Deadlock on [`Idle]. *)
val run :
  ?max_ticks:int -> t -> run_one:(Proc.t -> unit) -> on_budget:(unit -> unit) -> unit

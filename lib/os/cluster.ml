module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault
module Domain_pool = Hemlock_util.Domain_pool

(* A datagram in flight.  [m_sent] is the cluster round it left the
   sender; [m_mature] is the first round it may be delivered —
   [m_sent + latency], where the latency comes from the network
   profile's per-link draw ([Net.transmit]; always 1 under [Ideal], so
   the default profile keeps the old uniform one-round bus).  [m_seq]
   is a per-sender sequence number and [m_copy] distinguishes
   network-injected duplicates; sorting matured datagrams by
   (maturity, sender, seq, copy) makes delivery order deterministic
   even when a sender's messages straddle a drain snapshot or arrive
   out of order. *)
type kind =
  | Data
  | Data_acked of { xfer : int }  (** reliable send: deliver, then ack *)
  | Ack of { xfer : int }  (** transport ack riding back to the sender *)

type message = {
  m_sent : int;
  m_mature : int;
  m_sender : int;
  m_seq : int;
  m_copy : int;
  m_kind : kind;
  m_payload : Bytes.t;
}

type mailbox = {
  mb_lock : Mutex.t;
  mutable mb_pending : message list;
}

type t = {
  kernels : Kernel.t array;
  mailboxes : mailbox array;
  net : Net.t;
  mutable round : int;
  (* Per-sender counters.  Machine [i]'s counters are only touched
     while machine [i] runs (its own sends, and the acks its drain
     emits), and a machine runs on exactly one domain per round, so
     plain ints suffice. *)
  seqs : int array;
  xfers : int array;
  (* Acks received by machine [i]'s drain, keyed by transfer id; read
     by that machine's blocked reliable senders — same domain. *)
  acked : (int, unit) Hashtbl.t array;
  (* Reliable senders currently sleeping out an ack timeout, and the
     highest deadline round any of them waits for.  Written from
     worker domains, read by the coordinator's stall check. *)
  waiters : int Atomic.t;
  max_wake : int Atomic.t;
}

let inbox = "net-inbox"

let create ?profile ?seed ~machines () =
  if machines <= 0 then invalid_arg "Cluster.create: need at least one machine";
  let profile = match profile with Some p -> p | None -> Net.profile_from_env () in
  let seed = match seed with Some s -> s | None -> Net.seed_from_env () in
  let boot _ =
    let k = Kernel.create () in
    Kernel.msgq_create k inbox ~capacity:4096;
    k
  in
  {
    kernels = Array.init machines boot;
    mailboxes =
      Array.init machines (fun _ -> { mb_lock = Mutex.create (); mb_pending = [] });
    net = Net.create ~machines ~profile ~seed;
    round = 0;
    seqs = Array.make machines 0;
    xfers = Array.make machines 0;
    acked = Array.init machines (fun _ -> Hashtbl.create 16);
    waiters = Atomic.make 0;
    max_wake = Atomic.make 0;
  }

let size t = Array.length t.kernels

let machine t i = t.kernels.(i)

let net t = t.net

let rounds t = t.round

let push_mail t dst msg =
  let mb = t.mailboxes.(dst) in
  Mutex.lock mb.mb_lock;
  mb.mb_pending <- msg :: mb.mb_pending;
  Mutex.unlock mb.mb_lock

(* One link transmission.  The [net.send] fault site fires per
   destination: an injected failure loses this link's datagram, a crash
   kills the sending machine mid-send.  [Net.transmit] then rolls the
   profile's dice — partition, loss, latency, duplication. *)
let link_send t ~from ~dst ~seq ~kind payload =
  match Fault.hit "net.send" with
  | () ->
    List.iteri
      (fun copy lat ->
        push_mail t dst
          {
            m_sent = t.round;
            m_mature = t.round + lat;
            m_sender = from;
            m_seq = seq;
            m_copy = copy;
            m_kind = kind;
            m_payload = payload;
          })
      (Net.transmit t.net ~from ~dst)
  | exception Fault.Injected _ -> Net.drop_at_send t.net ~from

let broadcast t ~from payload =
  (* One defensive copy per send: [Kernel.enqueue_net] gives every
     receiver its own copy at delivery, so this single in-flight copy
     is safe to share across destinations and network duplicates even
     if the sender immediately reuses its buffer.  Host-side only —
     network traffic is still billed per datagram that lands. *)
  let payload = Bytes.copy payload in
  let seq = t.seqs.(from) in
  t.seqs.(from) <- seq + 1;
  for dst = 0 to size t - 1 do
    if dst <> from then link_send t ~from ~dst ~seq ~kind:Data payload
  done

let check_dst t ~what ~from dst =
  if dst = from || dst < 0 || dst >= size t then
    invalid_arg (Printf.sprintf "Cluster.%s: bad destination" what)

let send t ~from ~dst payload =
  check_dst t ~what:"send" ~from dst;
  let payload = Bytes.copy payload in
  let seq = t.seqs.(from) in
  t.seqs.(from) <- seq + 1;
  link_send t ~from ~dst ~seq ~kind:Data payload

(* Deliver machine [i]'s matured datagrams, oldest first.  Returns how
   many landed; payload traffic is billed per datagram that actually
   makes it into the inbox, on the delivering domain's stats record.
   On [EAGAIN] (inbox full) the remainder waits for a later round.
   Reliable-send payloads additionally put an ack on the wire back to
   the sender — itself subject to the network's loss and latency. *)
let drain t i =
  let mb = t.mailboxes.(i) in
  Mutex.lock mb.mb_lock;
  let pending = mb.mb_pending in
  mb.mb_pending <- [];
  Mutex.unlock mb.mb_lock;
  let matured, future = List.partition (fun m -> m.m_mature <= t.round) pending in
  let matured =
    List.sort
      (fun a b ->
        compare
          (a.m_mature, a.m_sender, a.m_seq, a.m_copy)
          (b.m_mature, b.m_sender, b.m_seq, b.m_copy))
      matured
  in
  let k = t.kernels.(i) in
  let delivered = ref 0 in
  let rec deliver = function
    | [] -> []
    | m :: rest -> (
      match Fault.hit "net.deliver" with
      | exception Fault.Injected _ ->
        Net.drop_at_deliver t.net ~dst:i;
        deliver rest
      | () -> (
        match m.m_kind with
        | Ack { xfer } ->
          Hashtbl.replace t.acked.(i) xfer ();
          Net.delivered t.net ~dst:i ~rounds:(t.round - m.m_sent);
          incr delivered;
          deliver rest
        | Data | Data_acked _ -> (
          match Kernel.enqueue_net k inbox m.m_payload with
          | Ok () ->
            let st = Stats.cur () in
            st.messages_sent <- st.messages_sent + 1;
            st.bytes_copied <- st.bytes_copied + Bytes.length m.m_payload;
            Net.delivered t.net ~dst:i ~rounds:(t.round - m.m_sent);
            (match m.m_kind with
            | Data_acked { xfer } ->
              let seq = t.seqs.(i) in
              t.seqs.(i) <- seq + 1;
              link_send t ~from:i ~dst:m.m_sender ~seq ~kind:(Ack { xfer })
                (Bytes.create 0)
            | Data | Ack _ -> ());
            incr delivered;
            deliver rest
          | Error _ -> m :: rest)))
  in
  let leftover = deliver matured in
  if leftover <> [] || future <> [] then begin
    Mutex.lock mb.mb_lock;
    (* Concurrent broadcasts may have refilled the list; order does not
       matter — the sort above re-establishes it at the next drain. *)
    mb.mb_pending <- List.rev_append leftover (List.rev_append future mb.mb_pending);
    Mutex.unlock mb.mb_lock
  end;
  !delivered

(* (depth, matured, highest maturity) of machine [i]'s mailbox.  Only
   the matured count names genuinely undeliverable datagrams; the rest
   are just late. *)
let mailbox_stats t i =
  let mb = t.mailboxes.(i) in
  Mutex.lock mb.mb_lock;
  let pending = mb.mb_pending in
  Mutex.unlock mb.mb_lock;
  List.fold_left
    (fun (depth, matured, horizon) m ->
      ( depth + 1,
        (if m.m_mature <= t.round then matured + 1 else matured),
        max horizon m.m_mature ))
    (0, 0, 0) pending

let domains_from_env () =
  match Sys.getenv_opt "HEMLOCK_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

(* ----- reliable per-datagram send ----- *)

let retries_from_env () =
  match Option.bind (Sys.getenv_opt "HEMLOCK_NET_RETRIES") int_of_string_opt with
  | Some n when n >= 0 -> n
  | Some _ | None -> 4

let timeout_from_env () =
  match Option.bind (Sys.getenv_opt "HEMLOCK_NET_TIMEOUT") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 4

(* The retry window stops doubling here: with the default base of 4
   rounds and 4 retries the whole exchange resolves within ~60 rounds
   of simulated time. *)
let backoff_cap = 64

let rec fetch_max a v =
  let cur = Atomic.get a in
  if v <= cur then () else if Atomic.compare_and_set a cur v then () else fetch_max a v

let send_reliable t ~from ~dst ?retries ?timeout payload =
  check_dst t ~what:"send_reliable" ~from dst;
  let retries = match retries with Some r -> max 0 r | None -> retries_from_env () in
  let base = match timeout with Some w -> max 1 w | None -> timeout_from_env () in
  let payload = Bytes.copy payload in
  let xfer = t.xfers.(from) in
  t.xfers.(from) <- xfer + 1;
  let acked = t.acked.(from) in
  let rec attempt n window =
    let seq = t.seqs.(from) in
    t.seqs.(from) <- seq + 1;
    link_send t ~from ~dst ~seq ~kind:(Data_acked { xfer }) payload;
    let deadline = t.round + window in
    fetch_max t.max_wake deadline;
    Atomic.incr t.waiters;
    Proc.wait_until
      ~why:(Printf.sprintf "net:ack xfer %d from m%d" xfer dst)
      (fun () -> Hashtbl.mem acked xfer || t.round >= deadline);
    Atomic.decr t.waiters;
    if Hashtbl.mem acked xfer then begin
      Hashtbl.remove acked xfer;
      Ok ()
    end
    else if n >= retries then Error Errno.ETIMEDOUT
    else begin
      (* capped exponential backoff, billed in simulated cycles: the
         sender spins its wheels, it does not stop the world *)
      let st = Stats.cur () in
      st.net_retransmits <- st.net_retransmits + 1;
      st.instructions <- st.instructions + (100 lsl min n 6);
      attempt (n + 1) (min backoff_cap (window * 2))
    end
  in
  attempt 0 base

let run ?(max_rounds = 1_000_000) ?domains t =
  let machines = size t in
  let requested =
    match domains with
    | Some d -> d
    | None -> domains_from_env ()
  in
  if requested < 1 then invalid_arg "Cluster.run: need at least one domain";
  (* More domains than machines would just idle. *)
  let n = min requested machines in
  let pool = Domain_pool.create ~domains:n in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let outcomes = Array.make machines `Done in
  let delivered = Array.make machines 0 in
  let rec loop rounds =
    if rounds = 0 then raise (Kernel.Os_error "Cluster.run: round budget exhausted");
    t.round <- t.round + 1;
    (* Machine [i] belongs to worker [i mod n] for the whole run, so a
       machine's kernel (and any native-process continuations inside
       it) never migrates between domains. *)
    Domain_pool.round pool (fun w ->
        for i = 0 to machines - 1 do
          if i mod n = w then begin
            delivered.(i) <- drain t i;
            outcomes.(i) <- Kernel.step t.kernels.(i)
          end
        done);
    let progress = ref false in
    let idle = ref [] in
    let deliveries = ref 0 in
    for i = machines - 1 downto 0 do
      deliveries := !deliveries + delivered.(i);
      match outcomes.(i) with
      | `Progress -> progress := true
      | `Idle -> idle := i :: !idle
      | `Done -> ()
    done;
    let pending = ref 0 in
    let horizon = ref 0 in
    for i = 0 to machines - 1 do
      let depth, _, h = mailbox_stats t i in
      pending := !pending + depth;
      horizon := max !horizon h
    done;
    (* A reliable sender sleeping out an ack timeout keeps the cluster
       alive until its deadline round, even with nothing in flight. *)
    let horizon =
      if Atomic.get t.waiters > 0 then max !horizon (Atomic.get t.max_wake)
      else !horizon
    in
    if !progress || !deliveries > 0 then loop (rounds - 1)
    else if t.round < horizon then
      (* Nothing moved this round, but in-flight datagrams with a
         future maturity (or a pending retry deadline) can still wake
         the cluster: with multi-round latencies, the old single grace
         round becomes "wait out the highest in-flight maturity". *)
      loop (rounds - 1)
    else if !idle <> [] || !pending > 0 then begin
      (* No machine can move and the network cannot drain: report every
         stuck process tagged with its machine, plus a synthetic entry
         per machine whose inbox traffic is undeliverable.  Only
         matured datagrams count — anything younger would have pushed
         the horizon past the current round. *)
      let stuck =
        List.concat_map
          (fun i ->
            List.map
              (fun b ->
                { b with Kernel.b_comm = Printf.sprintf "m%d:%s" i b.Kernel.b_comm })
              (Kernel.blocked_processes t.kernels.(i)))
          !idle
      in
      let net =
        List.filter_map
          (fun i ->
            let _, matured, _ = mailbox_stats t i in
            if matured = 0 then None
            else
              Some
                {
                  Kernel.b_pid = 0;
                  b_comm = Printf.sprintf "m%d:net" i;
                  b_why =
                    Printf.sprintf "%d undeliverable datagram(s) for %s" matured inbox;
                })
          (List.init machines (fun i -> i))
      in
      raise (Kernel.Deadlock (stuck @ net))
    end
  in
  loop max_rounds

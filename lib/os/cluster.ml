module Stats = Hemlock_util.Stats
module Domain_pool = Hemlock_util.Domain_pool

(* A datagram in flight.  [m_round] is the cluster round it was sent
   in: it matures (becomes deliverable) one round later, so every
   machine sees the same uniform one-round network latency no matter
   how the machines are spread over domains.  [m_seq] is a per-sender
   sequence number; sorting matured datagrams by (round, sender, seq)
   makes delivery order deterministic even when a sender's messages
   straddle a drain snapshot. *)
type message = {
  m_round : int;
  m_sender : int;
  m_seq : int;
  m_payload : Bytes.t;
}

type mailbox = {
  mb_lock : Mutex.t;
  mutable mb_pending : message list;
}

type t = {
  kernels : Kernel.t array;
  mailboxes : mailbox array;
  mutable round : int;
  (* Per-sender broadcast counters.  Machine [i]'s counter is only
     touched while machine [i] runs, and a machine runs on exactly one
     domain per round, so plain ints suffice. *)
  seqs : int array;
}

let inbox = "net-inbox"

let create ~machines =
  if machines <= 0 then invalid_arg "Cluster.create: need at least one machine";
  let boot _ =
    let k = Kernel.create () in
    Kernel.msgq_create k inbox ~capacity:4096;
    k
  in
  {
    kernels = Array.init machines boot;
    mailboxes =
      Array.init machines (fun _ -> { mb_lock = Mutex.create (); mb_pending = [] });
    round = 0;
    seqs = Array.make machines 0;
  }

let size t = Array.length t.kernels

let machine t i = t.kernels.(i)

let broadcast t ~from payload =
  let seq = t.seqs.(from) in
  t.seqs.(from) <- seq + 1;
  let msg = { m_round = t.round; m_sender = from; m_seq = seq; m_payload = payload } in
  Array.iteri
    (fun i mb ->
      if i <> from then begin
        Mutex.lock mb.mb_lock;
        mb.mb_pending <- msg :: mb.mb_pending;
        Mutex.unlock mb.mb_lock
      end)
    t.mailboxes

(* Deliver machine [i]'s matured datagrams, oldest first.  Returns how
   many landed; network traffic is billed per datagram that actually
   makes it into the inbox, on the delivering domain's stats record.
   On [EAGAIN] (inbox full) the remainder waits for a later round. *)
let drain t i =
  let mb = t.mailboxes.(i) in
  Mutex.lock mb.mb_lock;
  let pending = mb.mb_pending in
  mb.mb_pending <- [];
  Mutex.unlock mb.mb_lock;
  let matured, future = List.partition (fun m -> m.m_round < t.round) pending in
  let matured =
    List.sort
      (fun a b ->
        compare (a.m_round, a.m_sender, a.m_seq) (b.m_round, b.m_sender, b.m_seq))
      matured
  in
  let k = t.kernels.(i) in
  let delivered = ref 0 in
  let rec deliver = function
    | [] -> []
    | m :: rest -> (
      match Kernel.enqueue_net k inbox m.m_payload with
      | Ok () ->
        let st = Stats.cur () in
        st.messages_sent <- st.messages_sent + 1;
        st.bytes_copied <- st.bytes_copied + Bytes.length m.m_payload;
        incr delivered;
        deliver rest
      | Error _ -> m :: rest)
  in
  let leftover = deliver matured in
  if leftover <> [] || future <> [] then begin
    Mutex.lock mb.mb_lock;
    (* Concurrent broadcasts may have refilled the list; order does not
       matter — the sort above re-establishes it at the next drain. *)
    mb.mb_pending <- List.rev_append leftover (List.rev_append future mb.mb_pending);
    Mutex.unlock mb.mb_lock
  end;
  !delivered

let mailbox_depth t i =
  let mb = t.mailboxes.(i) in
  Mutex.lock mb.mb_lock;
  let n = List.length mb.mb_pending in
  Mutex.unlock mb.mb_lock;
  n

let pending_count t =
  let n = ref 0 in
  for i = 0 to size t - 1 do
    n := !n + mailbox_depth t i
  done;
  !n

let domains_from_env () =
  match Sys.getenv_opt "HEMLOCK_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

let run ?(max_rounds = 1_000_000) ?domains t =
  let machines = size t in
  let requested =
    match domains with
    | Some d -> d
    | None -> domains_from_env ()
  in
  if requested < 1 then invalid_arg "Cluster.run: need at least one domain";
  (* More domains than machines would just idle. *)
  let n = min requested machines in
  let pool = Domain_pool.create ~domains:n in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let outcomes = Array.make machines `Done in
  let delivered = Array.make machines 0 in
  (* One grace round before declaring the cluster wedged: datagrams
     sent in round [r] only mature in round [r + 1], so a round with no
     kernel progress can still be followed by deliveries. *)
  let stall = ref 0 in
  let rec loop rounds =
    if rounds = 0 then raise (Kernel.Os_error "Cluster.run: round budget exhausted");
    t.round <- t.round + 1;
    (* Machine [i] belongs to worker [i mod n] for the whole run, so a
       machine's kernel (and any native-process continuations inside
       it) never migrates between domains. *)
    Domain_pool.round pool (fun w ->
        for i = 0 to machines - 1 do
          if i mod n = w then begin
            delivered.(i) <- drain t i;
            outcomes.(i) <- Kernel.step t.kernels.(i)
          end
        done);
    let progress = ref false in
    let idle = ref [] in
    let deliveries = ref 0 in
    for i = machines - 1 downto 0 do
      deliveries := !deliveries + delivered.(i);
      match outcomes.(i) with
      | `Progress -> progress := true
      | `Idle -> idle := i :: !idle
      | `Done -> ()
    done;
    let pending = pending_count t in
    if !progress || !deliveries > 0 then begin
      stall := 0;
      loop (rounds - 1)
    end
    else if pending > 0 && !stall = 0 then begin
      incr stall;
      loop (rounds - 1)
    end
    else if !idle <> [] || pending > 0 then begin
      (* No machine can move and the network cannot drain: report every
         stuck process tagged with its machine, plus a synthetic entry
         per machine whose inbox traffic is undeliverable. *)
      let stuck =
        List.concat_map
          (fun i ->
            List.map
              (fun b ->
                { b with Kernel.b_comm = Printf.sprintf "m%d:%s" i b.Kernel.b_comm })
              (Kernel.blocked_processes t.kernels.(i)))
          !idle
      in
      let net =
        List.filter_map
          (fun i ->
            let depth = mailbox_depth t i in
            if depth = 0 then None
            else
              Some
                {
                  Kernel.b_pid = 0;
                  b_comm = Printf.sprintf "m%d:net" i;
                  b_why = Printf.sprintf "%d undeliverable datagram(s) for %s" depth inbox;
                })
          (List.init machines (fun i -> i))
      in
      raise (Kernel.Deadlock (stuck @ net))
    end
  in
  loop max_rounds

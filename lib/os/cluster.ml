module Stats = Hemlock_util.Stats

type t = { kernels : Kernel.t array }

let inbox = "net-inbox"

let create ~machines =
  if machines <= 0 then invalid_arg "Cluster.create: need at least one machine";
  let boot _ =
    let k = Kernel.create () in
    Kernel.msgq_create k inbox ~capacity:4096;
    k
  in
  { kernels = Array.init machines boot }

let size t = Array.length t.kernels

let machine t i = t.kernels.(i)

(* A kernel-less enqueue: network delivery is not any process's syscall,
   so it goes straight into the peer's queue via a transient carrier. *)
let deliver k payload =
  let carrier = Kernel.spawn_native k ~name:"net-rx" (fun k proc ->
      Kernel.msg_send k proc inbox payload;
      0)
  in
  ignore carrier

let broadcast t ~from payload =
  Array.iteri
    (fun i k ->
      if i <> from then begin
        Stats.global.messages_sent <- Stats.global.messages_sent + 1;
        Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length payload;
        deliver k payload
      end)
    t.kernels

let run ?(max_rounds = 1_000_000) t =
  let rec loop rounds =
    if rounds = 0 then raise (Kernel.Os_error "Cluster.run: round budget exhausted");
    let progress = ref false in
    let idle = ref [] in
    Array.iteri
      (fun i k ->
        match Kernel.step k with
        | `Progress -> progress := true
        | `Idle -> idle := i :: !idle
        | `Done -> ())
      t.kernels;
    if !progress then loop (rounds - 1)
    else if !idle <> [] then
      (* No machine can move and no network traffic is pending: report
         every stuck process, tagged with its machine. *)
      raise
        (Kernel.Deadlock
           (List.concat_map
              (fun i ->
                List.map
                  (fun b ->
                    { b with Kernel.b_comm = Printf.sprintf "m%d:%s" i b.Kernel.b_comm })
                  (Kernel.blocked_processes t.kernels.(i)))
              (List.rev !idle)))
  in
  loop max_rounds

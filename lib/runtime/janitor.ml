module Kernel = Hemlock_os.Kernel
module Fs = Hemlock_sfs.Fs
module Layout = Hemlock_vm.Layout
module Segment = Hemlock_vm.Segment
module Modinst = Hemlock_linker.Modinst
module Aout = Hemlock_linker.Aout

type kind = Module | Heap | Template | Executable | Plain

type entry = {
  j_slot : int;
  j_path : string;
  j_addr : int;
  j_bytes : int;
  j_kind : kind;
  j_heap_live : int option;
  j_template : string option;
}

let kind_to_string = function
  | Module -> "module"
  | Heap -> "heap"
  | Template -> "template"
  | Executable -> "executable"
  | Plain -> "plain"

let starts_with seg s =
  Segment.size seg >= String.length s
  && List.for_all
       (fun i -> Segment.get_u8 seg i = Char.code s.[i])
       (List.init (String.length s) Fun.id)

(* Header sniffing must survive whatever a crash left behind: a
   truncated or garbled segment is [Plain] data to be perused, never an
   exception out of the survey. *)
let classify seg =
  try
    if Modinst.Header.is_module_file seg then Module
    else if Shm_heap.is_heap_segment seg then Heap
    else if starts_with seg "HOBJ" then Template
    else if starts_with seg "HEXE" then Executable
    else Plain
  with _ -> Plain

let survey k =
  let fs = Kernel.fs k in
  List.map
    (fun (slot, path) ->
      let seg = Fs.segment_of fs path in
      let kind = classify seg in
      {
        j_slot = slot;
        j_path = path;
        j_addr = Layout.addr_of_slot slot;
        j_bytes = Segment.size seg;
        j_kind = kind;
        j_heap_live =
          (if kind = Heap then
             try Some (Shm_heap.live_bytes_of_segment seg) with _ -> None
           else None);
        j_template =
          (if kind = Module then try Some (Modinst.Header.template seg) with _ -> None
           else None);
      })
    (Fs.shared_table fs)

let remove k path = Fs.unlink (Kernel.fs k) path

let orphaned_modules k =
  let fs = Kernel.fs k in
  List.filter
    (fun e ->
      match e.j_template with
      | Some template -> not (Fs.exists fs template)
      | None -> false)
    (survey k)

(* ----- reaping policy ----------------------------------------------------- *)

type policy = entry -> bool

let orphan_policy k ~flagged =
  let fs = Kernel.fs k in
  fun e ->
    match e.j_kind with
    | Module -> (
      (* a module whose template is gone can never be re-verified *)
      match e.j_template with
      | Some template -> not (Fs.exists fs template)
      | None -> true (* unreadable header: corrupt module *))
    | Plain ->
      (* Conservative: only reap plain files that fsck flagged as
         unacknowledged creations — a published module whose creator
         crashed after the commit point is left alone. *)
      List.mem e.j_path flagged
    | Heap | Template | Executable -> false

let reap k ~policy =
  let victims = List.filter policy (survey k) in
  List.iter (fun e -> remove k e.j_path) victims;
  victims

let pp_entry ppf e =
  Format.fprintf ppf "slot %4d  0x%08x  %-10s %7dB  %s%s" e.j_slot e.j_addr
    (kind_to_string e.j_kind) e.j_bytes e.j_path
    (match (e.j_heap_live, e.j_template) with
    | Some live, _ -> Printf.sprintf "  (live %dB)" live
    | _, Some t -> Printf.sprintf "  (from %s)" t
    | None, None -> "")

module Kernel = Hemlock_os.Kernel
module Fs = Hemlock_sfs.Fs
module Layout = Hemlock_vm.Layout
module Segment = Hemlock_vm.Segment
module Modinst = Hemlock_linker.Modinst
module Aout = Hemlock_linker.Aout
module Stable_link = Hemlock_linker.Stable_link

type kind = Module | Heap | Template | Executable | Stable | Plain

type entry = {
  j_slot : int;
  j_path : string;
  j_addr : int;
  j_bytes : int;
  j_kind : kind;
  j_heap_live : int option;
  j_template : string option;
}

let kind_to_string = function
  | Module -> "module"
  | Heap -> "heap"
  | Template -> "template"
  | Executable -> "executable"
  | Stable -> "stable"
  | Plain -> "plain"

let starts_with seg s =
  Segment.size seg >= String.length s
  && List.for_all
       (fun i -> Segment.get_u8 seg i = Char.code s.[i])
       (List.init (String.length s) Fun.id)

(* Header sniffing must survive whatever a crash left behind: a
   truncated or garbled segment is [Plain] data to be perused, never an
   exception out of the survey. *)
let classify seg =
  try
    if Modinst.Header.is_module_file seg then Module
    else if Shm_heap.is_heap_segment seg then Heap
    else if starts_with seg "HOBJ" then Template
    else if starts_with seg "HEXE" then Executable
    else Plain
  with _ -> Plain

(* Files under the reserved stable-link namespace are classified by
   where they live, not by their header: a truncated plan file has no
   recognizable header left, and it must still be identified as
   stable-link state so the policy below can judge it. *)
let in_stable_dir path =
  let prefix = Stable_link.dir ^ "/" in
  String.length path > String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let survey k =
  let fs = Kernel.fs k in
  List.map
    (fun (slot, path) ->
      let seg = Fs.segment_of fs path in
      let kind = if in_stable_dir path then Stable else classify seg in
      {
        j_slot = slot;
        j_path = path;
        j_addr = Layout.addr_of_slot slot;
        j_bytes = Segment.size seg;
        j_kind = kind;
        j_heap_live =
          (if kind = Heap then
             try Some (Shm_heap.live_bytes_of_segment seg) with _ -> None
           else None);
        j_template =
          (if kind = Module then try Some (Modinst.Header.template seg) with _ -> None
           else None);
      })
    (Fs.shared_table fs)

let remove k path = Fs.unlink (Kernel.fs k) path

let orphaned_modules k =
  let fs = Kernel.fs k in
  List.filter
    (fun e ->
      match e.j_template with
      | Some template -> not (Fs.exists fs template)
      | None -> false)
    (survey k)

(* ----- reaping policy ----------------------------------------------------- *)

type policy = entry -> bool

let orphan_policy k ~flagged =
  let fs = Kernel.fs k in
  fun e ->
    match e.j_kind with
    | Module -> (
      (* a module whose template is gone can never be re-verified *)
      match e.j_template with
      | Some template -> not (Fs.exists fs template)
      | None -> true (* unreadable header: corrupt module *))
    | Plain ->
      (* Conservative: only reap plain files that fsck flagged as
         unacknowledged creations — a published module whose creator
         crashed after the commit point is left alone. *)
      List.mem e.j_path flagged
    | Stable ->
      (* Stable-link files are pure cache: a file that no longer
         decodes (truncated header, garbled body) can never be loaded
         again and is reaped; a well-formed one is kept — staleness
         against the live world is judged at load time, which reaps on
         first failed load. *)
      not
        (try Stable_link.valid_segment (Fs.segment_of fs e.j_path) with _ -> false)
    | Heap | Template | Executable -> false

let reap k ~policy =
  let victims = List.filter policy (survey k) in
  List.iter (fun e -> remove k e.j_path) victims;
  victims

let pp_entry ppf e =
  Format.fprintf ppf "slot %4d  0x%08x  %-10s %7dB  %s%s" e.j_slot e.j_addr
    (kind_to_string e.j_kind) e.j_bytes e.j_path
    (match (e.j_heap_live, e.j_template) with
    | Some live, _ -> Printf.sprintf "  (live %dB)" live
    | _, Some t -> Printf.sprintf "  (from %s)" t
    | None, None -> "")

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module As = Hemlock_vm.Address_space
module Reg = Hemlock_isa.Reg
module Cpu = Hemlock_isa.Cpu

(* ----- native spin locks ----- *)

let spin_init k proc addr = Kernel.store_u32 k proc addr 0

let spin_try_acquire k proc addr =
  (* The scheduler is cooperative, so load+store with no intervening
     yield is atomic for native code. *)
  if Kernel.load_u32 k proc addr = 0 then begin
    Kernel.store_u32 k proc addr proc.Proc.pid;
    true
  end
  else false

let spin_acquire k proc addr =
  let rec loop () =
    if not (spin_try_acquire k proc addr) then begin
      Proc.yield ();
      loop ()
    end
  in
  loop ()

let spin_release k proc addr = Kernel.store_u32 k proc addr 0

let with_spin k proc addr f =
  spin_acquire k proc addr;
  Fun.protect ~finally:(fun () -> spin_release k proc addr) f

(* ----- kernel lock syscalls for ISA programs ----- *)

let lock_sysno = Hemlock_os.Sysno.lock_acquire
let unlock_sysno = Hemlock_os.Sysno.lock_release

(* Read a user word from syscall context, resolving faults through the
   SIGSEGV chain (the lock word may live in a not-yet-mapped shared
   segment). *)
let syscall_load k proc cpu addr =
  let rec go fuel =
    if fuel = 0 then raise (Kernel.Os_error "lock: fault loop")
    else
      try As.load_u32 proc.Proc.space addr with
      | As.Fault { addr = a; access; reason } -> (
        (* Pager faults are kernel-internal: materialise and retry
           rather than raising SIGSEGV machinery for them. *)
        if reason = As.Not_resident && As.resolve_pager proc.Proc.space a access then
          go (fuel - 1)
        else
        match
          Kernel.deliver_segv k proc { Kernel.f_addr = a; f_access = access; f_reason = reason }
        with
        | Kernel.Resolved -> go (fuel - 1)
        | Kernel.Retry_when cond ->
          Kernel.block_syscall ~why:(Printf.sprintf "mapping 0x%08x" addr) cpu cond
        | Kernel.Unhandled ->
          raise (Kernel.Os_error (Printf.sprintf "lock: fault at 0x%08x" a)))
  in
  go 16

let free_now proc addr () =
  match As.load_u32 proc.Proc.space addr with
  | 0 -> true
  | _ -> false
  | exception As.Fault { addr = a; access; reason = As.Not_resident } -> (
    (* The lock word's page was evicted while we were blocked on it:
       fault it back in, or the condition could never come true. *)
    As.resolve_pager proc.Proc.space a access
    &&
    match As.load_u32 proc.Proc.space addr with
    | 0 -> true
    | _ -> false
    | exception As.Fault _ -> false)
  | exception As.Fault _ -> false

let install k =
  Kernel.register_syscall k lock_sysno (fun k proc cpu ->
      let addr = Cpu.reg cpu Reg.a0 in
      match syscall_load k proc cpu addr with
      | 0 ->
        As.store_u32 proc.Proc.space addr proc.Proc.pid;
        Cpu.set_reg cpu Reg.v0 0
      | _ ->
        Kernel.block_syscall
          ~why:(Printf.sprintf "lock word 0x%08x" addr)
          cpu (free_now proc addr));
  Kernel.register_syscall k unlock_sysno (fun k proc cpu ->
      let addr = Cpu.reg cpu Reg.a0 in
      ignore (syscall_load k proc cpu addr);
      As.store_u32 proc.Proc.space addr 0;
      Cpu.set_reg cpu Reg.v0 0)

(* ----- counting semaphores (native) ----- *)

let sem_init k proc addr v = Kernel.store_u32 k proc addr v

let sem_post k proc addr = Kernel.store_u32 k proc addr (Kernel.load_u32 k proc addr + 1)

let sem_wait k proc addr =
  (* Touch the word through the checked path first, so an unmapped
     semaphore segment is faulted in before the raw polling below. *)
  ignore (Kernel.load_u32 k proc addr);
  let positive () =
    match As.load_u32 proc.Proc.space addr with
    | 0 -> false
    | _ -> true
    | exception As.Fault _ -> false
  in
  let rec loop () =
    Proc.wait_until positive;
    let v = Kernel.load_u32 k proc addr in
    if v > 0 then Kernel.store_u32 k proc addr (v - 1) else loop ()
  in
  loop ()

(** Manual cleanup of shared segments (§5 "Garbage Collection").

    The paper sees "no alternative in the general case but to rely on
    manual cleanup", and leans on the crucial property that the shared
    file system provides "the ability to peruse all of the segments in
    existence".  This module is that perusal: a survey of every live
    slot, classifying each segment (created module, segment heap, plain
    data) with enough detail for a human or a policy script to decide
    what to delete. *)

module Kernel = Hemlock_os.Kernel

type kind =
  | Module  (** a created Hemlock module (HMOD header) *)
  | Heap  (** a formatted segment heap *)
  | Template  (** a module template (.o contents) *)
  | Executable  (** an a.out image *)
  | Stable
      (** a stable-link file under [/shared/.stable] (persisted link
          plan or symbol index) — classified by path, so truncated
          wrecks are still recognized as stable-link state *)
  | Plain  (** anything else *)

type entry = {
  j_slot : int;
  j_path : string;
  j_addr : int;
  j_bytes : int;  (** current file size *)
  j_kind : kind;
  j_heap_live : int option;  (** live allocation bytes, for heaps *)
  j_template : string option;  (** source template, for modules *)
}

val kind_to_string : kind -> string

(** Every live shared segment, in slot order. *)
val survey : Kernel.t -> entry list

(** [remove k path] unlinks a shared segment (freeing its slot). *)
val remove : Kernel.t -> string -> unit

(** Segments whose recorded template no longer exists — created modules
    orphaned by a deleted template; prime cleanup candidates. *)
val orphaned_modules : Kernel.t -> entry list

(** {1 Reaping policy}

    The paper's "manual cleanup" gets a mechanical assistant: a policy
    decides which surveyed entries to delete, and {!reap} applies it.
    The janitor never decides on its own — callers choose the policy. *)

type policy = entry -> bool

(** The conservative default: modules whose template is missing (or
    whose header is unreadable), plus [Plain] files in [flagged] —
    typically {!Hemlock_sfs.Fs.fsck}'s [fsck_orphans], creations a crash
    left unacknowledged.  Published modules are never flagged this way,
    so a module whose creator crashed after the commit point survives.
    [Stable] files are reaped iff they no longer decode (truncated or
    corrupt); well-formed ones are judged at load time instead. *)
val orphan_policy : Kernel.t -> flagged:string list -> policy

(** [reap k ~policy] removes every surveyed entry the policy selects and
    returns the removed entries. *)
val reap : Kernel.t -> policy:policy -> entry list

val pp_entry : Format.formatter -> entry -> unit

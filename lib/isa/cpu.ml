module As = Hemlock_vm.Address_space
module Layout = Hemlock_vm.Layout
module Segment = Hemlock_vm.Segment
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

(* --- Decoded-instruction cache --------------------------------------

   Straight-line code decodes each word once.  A [dpage] caches the
   decode of one executable page, pinned to the mapping geometry
   [As.exec_view] reported when it was filled.  A cached decode is
   reused only while two counters stand still:

   - the address space [epoch] — any map/unmap/protect bumps it, so a
     remapped or protection-flipped page can never serve stale decodes
     (lazy linking's no-access trick stays sound);
   - the backing segment's [Segment.version] — {e every} content write
     bumps it, whichever component performs it: this CPU's stores,
     another process sharing the segment, relocation patching that goes
     straight to the segment.

   While both match, the page provably holds the bytes it held at
   decode time and the hit path touches neither the address space nor
   the segment.  When the version has moved (e.g. code and mutated data
   share a segment), the cache degrades to {e word verification}: it
   re-reads the current word and reuses the decode only on an exact
   match — still correct against every writer, just one segment read
   per fetch.

   Copy-on-write fork needs no extra machinery here: [As.clone] gives
   the child a distinct [Segment.t] per private mapping (pages shared
   by refcount underneath), so parent and child decodes are keyed by
   different segments; a COW page copy happens inside a segment write,
   which bumps that segment's [version] and invalidates only the
   writing space's decodes, and [resolve_cow] bumps the faulting
   space's [epoch].  The other space's cache entries stay valid, as
   they should — its bytes did not change. *)

type dpage = {
  mutable dp_page : int;  (* page base address; -1 = invalid *)
  mutable dp_epoch : int;  (* address-space epoch the page was filled under *)
  mutable dp_hi : int;  (* mapping's exclusive bound, from [As.exec_view] *)
  mutable dp_delta : int;  (* segment offset delta for this mapping *)
  mutable dp_seg : Segment.t;
  mutable dp_version : int;  (* [Segment.version dp_seg] at fill time *)
  dp_words : int array;  (* raw words; -1 = slot empty *)
  dp_insns : Insn.t array;
}

(* Flipped off by setting HEMLOCK_NO_DCACHE (mirrors HEMLOCK_NO_TLB). *)
let decode_cache_enabled = ref (Sys.getenv_opt "HEMLOCK_NO_DCACHE" = None)

let icache_slots = 16
let insns_per_page = Layout.page_size / 4

(* Public modules sit at 1 MB boundaries, so their base pages share low
   page-number bits; fold in higher bits to spread them over the slots. *)
let icache_slot pc =
  let p = pc lsr Layout.page_shift in
  (p lxor (p lsr 8)) land (icache_slots - 1)

type t = {
  regs : int array;
  mutable pc : int;
  icache : dpage option array;
  jit : Trace.state;
}

type status = Running | Halted of int

type run_result = Out_of_fuel | Trapped of Trap.t

exception Cpu_error of { pc : int; msg : string }

exception Illegal_insn of { ill_pc : int; ill_word : int }

let create ~entry ~sp =
  let regs = Array.make 32 0 in
  regs.(Reg.sp) <- sp;
  { regs; pc = entry; icache = Array.make icache_slots None; jit = Trace.make regs }

let fork t =
  let regs = Array.copy t.regs in
  { regs; pc = t.pc; icache = Array.make icache_slots None; jit = Trace.make regs }

(* Register indices come from 5-bit decode fields, so the 32-element
   array can skip bounds checks on the interpreter's hottest loads. *)
let reg t r = Array.unsafe_get t.regs r

let set_reg t r v = if r <> 0 then Array.unsafe_set t.regs r (Codec.mask32 v)

let signed t r = Codec.sext32 (Array.unsafe_get t.regs r)

let error t msg = raise (Cpu_error { pc = t.pc; msg })

let decode_into t dp word idx =
  match Insn.decode word with
  | insn ->
    Array.unsafe_set dp.dp_words idx word;
    Array.unsafe_set dp.dp_insns idx insn;
    insn
  | exception Failure _ ->
    (* Undecodable word: an illegal-instruction trap, not a host error.
       [t.pc] still points at the word (fetch precedes any pc update). *)
    raise (Illegal_insn { ill_pc = t.pc; ill_word = word })

(* Slot invalid for this page/epoch: validate the fetch through the
   address space (raising the precise fault if it must) and re-pin the
   page to the current mapping geometry. *)
let refill t space pc slot =
  let seg, delta, hi = As.exec_view space pc in
  let dp =
    match t.icache.(slot) with
    | Some dp ->
      Array.fill dp.dp_words 0 insns_per_page (-1);
      dp
    | None ->
      let dp =
        {
          dp_page = 0;
          dp_epoch = 0;
          dp_hi = 0;
          dp_delta = 0;
          dp_seg = seg;
          dp_version = 0;
          dp_words = Array.make insns_per_page (-1);
          dp_insns = Array.make insns_per_page Insn.Break;
        }
      in
      t.icache.(slot) <- Some dp;
      dp
  in
  dp.dp_page <- Layout.page_down pc;
  dp.dp_epoch <- As.epoch space;
  dp.dp_hi <- hi;
  dp.dp_delta <- delta;
  dp.dp_seg <- seg;
  dp.dp_version <- Segment.version seg;
  decode_into t dp (Segment.get_u32 seg (pc + delta)) ((pc land (Layout.page_size - 1)) lsr 2)

let fetch_insn t space pc =
  if not !decode_cache_enabled then begin
    let word = As.fetch space pc in
    match Insn.decode word with
    | insn -> insn
    | exception Failure _ -> raise (Illegal_insn { ill_pc = pc; ill_word = word })
  end
  else begin
    let slot = icache_slot pc in
    match t.icache.(slot) with
    | Some dp
      when dp.dp_page = pc land lnot (Layout.page_size - 1)
           && dp.dp_epoch = As.epoch space
           && pc + 4 <= dp.dp_hi ->
      (* idx is masked to the page, so it always indexes the 1024-slot
         arrays in bounds. *)
      let idx = (pc land (Layout.page_size - 1)) lsr 2 in
      if Segment.version dp.dp_seg = dp.dp_version then
        (* Untouched since fill: the cached word is the current word. *)
        if Array.unsafe_get dp.dp_words idx >= 0 then begin
          (Stats.cur ()).decode_hits <- (Stats.cur ()).decode_hits + 1;
          Array.unsafe_get dp.dp_insns idx
        end
        else decode_into t dp (Segment.get_u32 dp.dp_seg (pc + dp.dp_delta)) idx
      else begin
        (* Segment written since fill: verify the word before reuse. *)
        let word = Segment.get_u32 dp.dp_seg (pc + dp.dp_delta) in
        if Array.unsafe_get dp.dp_words idx = word then begin
          (Stats.cur ()).decode_hits <- (Stats.cur ()).decode_hits + 1;
          Array.unsafe_get dp.dp_insns idx
        end
        else decode_into t dp word idx
      end
    | Some _ | None -> refill t space pc slot
  end

let step t space ~syscall =
  let pc = t.pc in
  let insn = fetch_insn t space pc in
  (Stats.cur ()).instructions <- (Stats.cur ()).instructions + 1;
  let next = pc + 4 in
  (* Single-dispatch: every arm finishes the instruction itself, so the
     interpreter pays one tag switch per step. *)
  match insn with
  | Insn.Break -> Halted (Codec.sext32 (Array.unsafe_get t.regs Reg.a0))
  | Insn.Syscall ->
    t.pc <- next;
    (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
    syscall t;
    Running
  | Insn.Sll (rd, rt, sh) ->
    set_reg t rd ((Array.unsafe_get t.regs rt) lsl sh);
    t.pc <- next;
    Running
  | Insn.Srl (rd, rt, sh) ->
    set_reg t rd ((Array.unsafe_get t.regs rt) lsr sh);
    t.pc <- next;
    Running
  | Insn.Sra (rd, rt, sh) ->
    set_reg t rd (Codec.sext32 (Array.unsafe_get t.regs rt) asr sh);
    t.pc <- next;
    Running
  | Insn.Add (rd, rs, rt) ->
    set_reg t rd ((Array.unsafe_get t.regs rs) + (Array.unsafe_get t.regs rt));
    t.pc <- next;
    Running
  | Insn.Sub (rd, rs, rt) ->
    set_reg t rd ((Array.unsafe_get t.regs rs) - (Array.unsafe_get t.regs rt));
    t.pc <- next;
    Running
  | Insn.Mul (rd, rs, rt) ->
    set_reg t rd (signed t rs * signed t rt);
    t.pc <- next;
    Running
  | Insn.Div (rd, rs, rt) ->
    if (Array.unsafe_get t.regs rt) = 0 then error t "division by zero";
    set_reg t rd (signed t rs / signed t rt);
    t.pc <- next;
    Running
  | Insn.Rem (rd, rs, rt) ->
    if (Array.unsafe_get t.regs rt) = 0 then error t "remainder by zero";
    set_reg t rd (signed t rs mod signed t rt);
    t.pc <- next;
    Running
  | Insn.And (rd, rs, rt) ->
    set_reg t rd ((Array.unsafe_get t.regs rs) land (Array.unsafe_get t.regs rt));
    t.pc <- next;
    Running
  | Insn.Or (rd, rs, rt) ->
    set_reg t rd ((Array.unsafe_get t.regs rs) lor (Array.unsafe_get t.regs rt));
    t.pc <- next;
    Running
  | Insn.Xor (rd, rs, rt) ->
    set_reg t rd ((Array.unsafe_get t.regs rs) lxor (Array.unsafe_get t.regs rt));
    t.pc <- next;
    Running
  | Insn.Slt (rd, rs, rt) ->
    set_reg t rd (if signed t rs < signed t rt then 1 else 0);
    t.pc <- next;
    Running
  | Insn.Sltu (rd, rs, rt) ->
    set_reg t rd (if (Array.unsafe_get t.regs rs) < (Array.unsafe_get t.regs rt) then 1 else 0);
    t.pc <- next;
    Running
  | Insn.Addi (rt, rs, imm) ->
    set_reg t rt ((Array.unsafe_get t.regs rs) + imm);
    t.pc <- next;
    Running
  | Insn.Slti (rt, rs, imm) ->
    set_reg t rt (if signed t rs < imm then 1 else 0);
    t.pc <- next;
    Running
  | Insn.Andi (rt, rs, imm) ->
    set_reg t rt ((Array.unsafe_get t.regs rs) land imm);
    t.pc <- next;
    Running
  | Insn.Ori (rt, rs, imm) ->
    set_reg t rt ((Array.unsafe_get t.regs rs) lor imm);
    t.pc <- next;
    Running
  | Insn.Xori (rt, rs, imm) ->
    set_reg t rt ((Array.unsafe_get t.regs rs) lxor imm);
    t.pc <- next;
    Running
  | Insn.Lui (rt, imm) ->
    set_reg t rt (imm lsl 16);
    t.pc <- next;
    Running
  | Insn.Lw (rt, base, off) ->
    set_reg t rt (As.load_u32 space (Codec.mask32 ((Array.unsafe_get t.regs base) + off)));
    t.pc <- next;
    Running
  | Insn.Lb (rt, base, off) ->
    set_reg t rt (As.load_u8 space (Codec.mask32 ((Array.unsafe_get t.regs base) + off)));
    t.pc <- next;
    Running
  | Insn.Sw (rt, base, off) ->
    (* No explicit icache invalidation needed: the store bumps the
       segment's version, which gates decode-cache reuse. *)
    As.store_u32 space (Codec.mask32 ((Array.unsafe_get t.regs base) + off))
      (Array.unsafe_get t.regs rt);
    t.pc <- next;
    Running
  | Insn.Sb (rt, base, off) ->
    As.store_u8 space
      (Codec.mask32 ((Array.unsafe_get t.regs base) + off))
      ((Array.unsafe_get t.regs rt) land 0xFF);
    t.pc <- next;
    Running
  | Insn.Beq (rs, rt, off) ->
    t.pc <- (if (Array.unsafe_get t.regs rs) = (Array.unsafe_get t.regs rt) then next + (off * 4) else next);
    Running
  | Insn.Bne (rs, rt, off) ->
    t.pc <- (if (Array.unsafe_get t.regs rs) <> (Array.unsafe_get t.regs rt) then next + (off * 4) else next);
    Running
  | Insn.Blez (rs, off) ->
    t.pc <- (if signed t rs <= 0 then next + (off * 4) else next);
    Running
  | Insn.Bgtz (rs, off) ->
    t.pc <- (if signed t rs > 0 then next + (off * 4) else next);
    Running
  | Insn.J field ->
    t.pc <- Insn.jump_target ~pc field;
    Running
  | Insn.Jal field ->
    set_reg t Reg.ra next;
    t.pc <- Insn.jump_target ~pc field;
    Running
  | Insn.Jr rs ->
    t.pc <- Array.unsafe_get t.regs rs;
    Running
  | Insn.Jalr (rd, rs) ->
    let target = Array.unsafe_get t.regs rs in
    set_reg t rd next;
    t.pc <- target;
    Running

let run ~fuel t space ~syscall =
  let rec go n = if n = 0 then Running else
    match step t space ~syscall with
    | Running -> go (n - 1)
    | Halted code -> Halted code
  in
  go fuel

(* --- trap-returning execution ----------------------------------------

   [run_trap] drives the same [step] interpreter but reifies every exit
   from user mode as a [Trap.t] instead of spreading them over a status
   value, a callback and two exceptions.  The SYSCALL arm still pays its
   one instruction of fuel and bumps the syscall counter inside [step],
   so the cost model is identical to [run] with a dispatching callback;
   a fault consumes no fuel (the instruction did not complete and will
   restart), matching the exception path it replaces. *)

exception Syscall_trap

(* With the trace JIT enabled, the same loop additionally offers every
   {e anchored} pc — a burst start, or the successor of any step that
   was not a straight fall-through — to {!Trace.enter}.  A compiled
   trace threads the remaining fuel through its closure chain and
   reports how it left; every exit re-anchors (trace tails are branch
   targets by construction).  The accounting mirrors the interpreter
   case-for-case: fuel-out at an instruction boundary, syscall/halt
   with one instruction billed, faults with the instruction billed but
   no fuel consumed and the pc on the faulting instruction. *)
let run_trap ~fuel t space =
  if not !Trace.enabled then begin
    let rec go n =
      if n = 0 then (Out_of_fuel, 0)
      else
        match step t space ~syscall:(fun _ -> raise_notrace Syscall_trap) with
        | Running -> go (n - 1)
        | Halted code -> (Trapped (Trap.Halt code), n - 1)
        | exception Syscall_trap -> (Trapped Trap.Syscall, n - 1)
        | exception Illegal_insn { ill_pc; ill_word } ->
          (Trapped (Trap.Illegal { ill_pc; ill_word }), n)
        | exception As.Fault { addr; access; reason } ->
          ( Trapped
              (Trap.Fault { f_addr = addr; f_access = access; f_reason = reason }),
            n )
    in
    go fuel
  end
  else begin
    let st = t.jit in
    let rec go n anchored =
      if n = 0 then (Out_of_fuel, 0)
      else if not anchored then interp n
      else
        match Trace.enter st space t.pc n with
        | Trace.Missed -> interp n
        | Trace.Ran (Trace.X_side n') ->
          t.pc <- Trace.resume_pc st;
          go n' true
        | Trace.Ran (Trace.X_halt (code, n')) ->
          t.pc <- Trace.resume_pc st;
          (Trapped (Trap.Halt code), n')
        | Trace.Ran (Trace.X_syscall n') ->
          t.pc <- Trace.resume_pc st;
          (Trapped Trap.Syscall, n')
        | exception As.Fault { addr; access; reason } ->
          t.pc <- Trace.resume_pc st;
          ( Trapped
              (Trap.Fault { f_addr = addr; f_access = access; f_reason = reason }),
            Trace.resume_fuel st )
        | exception Trace.Error { e_pc; e_msg } ->
          t.pc <- e_pc;
          raise (Cpu_error { pc = e_pc; msg = e_msg })
    and interp n =
      let pc0 = t.pc in
      match step t space ~syscall:(fun _ -> raise_notrace Syscall_trap) with
      | Running -> go (n - 1) (t.pc <> pc0 + 4)
      | Halted code -> (Trapped (Trap.Halt code), n - 1)
      | exception Syscall_trap -> (Trapped Trap.Syscall, n - 1)
      | exception Illegal_insn { ill_pc; ill_word } ->
        (Trapped (Trap.Illegal { ill_pc; ill_word }), n)
      | exception As.Fault { addr; access; reason } ->
        ( Trapped
            (Trap.Fault { f_addr = addr; f_access = access; f_reason = reason }),
          n )
    in
    go fuel true
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>pc = 0x%08x@," t.pc;
  for i = 0 to 31 do
    if t.regs.(i) <> 0 then
      Format.fprintf ppf "%-5s = 0x%08x@," (Reg.name i) t.regs.(i)
  done;
  Format.fprintf ppf "@]"

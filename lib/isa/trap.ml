type fault = {
  f_addr : int;
  f_access : Hemlock_vm.Prot.access;
  f_reason : Hemlock_vm.Address_space.fault_reason;
}

type t =
  | Syscall
  | Fault of fault
  | Halt of int
  | Illegal of { ill_pc : int; ill_word : int }

let pp_fault ppf f =
  Format.fprintf ppf "%a fault at 0x%08x (%s)" Hemlock_vm.Prot.pp_access
    f.f_access f.f_addr
    (match f.f_reason with
    | Hemlock_vm.Address_space.Unmapped -> "unmapped"
    | Hemlock_vm.Address_space.Protection -> "protection"
    | Hemlock_vm.Address_space.Not_resident -> "not-resident")

let pp ppf = function
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Fault f -> pp_fault ppf f
  | Halt code -> Format.fprintf ppf "halt (%d)" code
  | Illegal { ill_pc; ill_word } ->
    Format.fprintf ppf "illegal instruction 0x%08x at 0x%08x" ill_word ill_pc

module Codec = Hemlock_util.Codec

let line ~pc word =
  match Insn.decode word with
  | insn -> Format.asprintf "%08x: %08x  %a" pc word Insn.pp insn
  | exception Failure _ -> Printf.sprintf "%08x: %08x  <data?>" pc word

let text ~base bytes =
  let buf = Buffer.create 256 in
  let n = Bytes.length bytes / 4 in
  for i = 0 to n - 1 do
    Buffer.add_string buf (line ~pc:(base + (4 * i)) (Codec.get_u32 bytes (4 * i)));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Listing of one compiled JIT trace: the entry pc, each instruction on
   the selected path (in execution order, so an inlined call body appears
   after its JAL), and per-line guard/exit notes.  Printed to stderr by
   the trace compiler under HEMLOCK_JIT_LOG=1. *)
let trace_listing ~entry lines =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "[jit] trace @ 0x%08x (%d insns)\n" entry (List.length lines));
  List.iter
    (fun (pc, word, note) ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (line ~pc word);
      if note <> "" then begin
        Buffer.add_string buf "  ; ";
        Buffer.add_string buf note
      end;
      Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

let jump_targets ~base bytes =
  let n = Bytes.length bytes / 4 in
  let targets = ref [] in
  for i = 0 to n - 1 do
    let pc = base + (4 * i) in
    match Insn.decode (Codec.get_u32 bytes (4 * i)) with
    | Insn.J field | Insn.Jal field ->
      let t = Insn.jump_target ~pc field in
      if t >= base && t < base + Bytes.length bytes && not (List.mem t !targets) then
        targets := t :: !targets
    | _ -> ()
    | exception Failure _ -> ()
  done;
  List.sort compare !targets

(** Trace JIT: hot basic-block heads are compiled into chains of OCaml
    closures (threaded code), removing fetch/decode/dispatch from hot
    paths entirely.

    {!Cpu.run_trap} calls {!enter} at every {e anchored} pc — a burst
    start or the successor of any taken branch.  Each head is counted;
    at {!threshold} entries the straight-line run starting there is
    compiled into a superblock (unconditional branches followed,
    JAL/JR pairs inlined up to a small depth, conditional branches
    compiled as side-exit guards) and subsequent entries run the
    closure chain instead of the interpreter.

    Coherence uses exactly the decode cache's gating: compiled code
    words are pinned under [(As.epoch, Segment.version)], degrading to
    word verification when a version moved, and every store executed
    inside a trace re-checks the trace's own code dependencies so
    self-modifying code can never run one stale instruction.  Simulated
    costs (instruction ticks, fuel, syscall/halt/fault accounting) are
    bit-identical to the interpreter; only the [jit_*] observability
    counters in {!Hemlock_util.Stats} differ.

    Kill switch: the [HEMLOCK_NO_JIT] environment variable (or
    {!enabled}[:= false]) restores the plain interpreter byte-for-byte;
    [HEMLOCK_JIT_THRESHOLD] tunes the compile threshold (default 50,
    minimum 1); [HEMLOCK_JIT_LOG] dumps every compiled trace to stderr
    via {!Disasm.trace_listing}. *)

val enabled : bool ref
val threshold : int ref
val log_enabled : bool ref

(** Per-CPU JIT state: head counters, compiled traces, and the resume
    context traces write their exit pc/fuel into.  Created by
    {!Cpu.create}/{!Cpu.fork} over the CPU's own register array. *)
type state

(** [make regs] — fresh state whose compiled traces read and write
    [regs] directly. *)
val make : int array -> state

(** How a trace run left the closure chain.  The carried [int] is the
    fuel remaining; the resume pc is read with {!resume_pc}.

    - [X_side]: a guard took an uncompiled direction, the trace's
      straight-line run ended, or a looping trace stopped because the
      next iteration would not fit in the remaining quantum — resume
      interpreting (or enter another trace) at {!resume_pc};
    - [X_halt (code, fuel)]: BREAK, exactly like the interpreter's
      [Trapped (Halt code)];
    - [X_syscall fuel]: SYSCALL billed and pc advanced past it, exactly
      like the interpreter's [Trapped Syscall].

    A trace never runs the quantum dry: {!enter} returns [Missed]
    whenever the remaining fuel is below the trace's static length, so
    the interpreter always executes the quantum's tail and expiry lands
    on the interpreter's exact instruction boundary. *)
type exit = X_side of int | X_halt of int * int | X_syscall of int

type outcome =
  | Missed  (** head below threshold or not compilable: interpret *)
  | Ran of exit  (** a compiled trace ran; pc is in the resume context *)

(** Arithmetic traps (division/remainder by zero) raised out of a
    compiled trace; {!Cpu.run_trap} converts them to [Cpu_error] with
    identical payload to the interpreter's. *)
exception Error of { e_pc : int; e_msg : string }

(** [enter st space pc fuel] — count, maybe compile, maybe run.  May
    raise [As.Fault] (from a load/store, with the resume context set to
    the faulting instruction and its remaining fuel) or {!Error}. *)
val enter : state -> Hemlock_vm.Address_space.t -> int -> int -> outcome

(** Resume pc after an exit or fault: always the next instruction the
    interpreter would execute (for [X_halt] the BREAK itself, for
    [X_syscall] the instruction after the SYSCALL, for a fault the
    faulting instruction). *)
val resume_pc : state -> int

(** Fuel remaining at the faulting instruction (meaningful only after a
    fault raised out of {!enter}): the fault consumed no fuel, so this
    is the value the interpreter's loop would report. *)
val resume_fuel : state -> int

(** Disassembly of encoded text sections, for objdump-style tooling and
    linker debugging. *)

(** [line ~pc word] is one listing line: address, raw word, mnemonic.
    Undecodable words render as [<data?>]. *)
val line : pc:int -> int -> string

(** [text ~base bytes] disassembles a whole text section laid out at
    virtual address [base]. *)
val text : base:int -> Bytes.t -> string

(** [trace_listing ~entry lines] renders one compiled JIT trace for the
    [HEMLOCK_JIT_LOG=1] debug stream: each [(pc, word, note)] line in
    execution order, with [note] describing the guard or exit compiled
    at that instruction ([""] for plain straight-line code). *)
val trace_listing : entry:int -> (int * int * string) list -> string

(** [jump_targets bytes] is the set of word offsets that are targets of
    direct jumps within the section (useful for spotting veneers). *)
val jump_targets : base:int -> Bytes.t -> int list

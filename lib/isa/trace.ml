module As = Hemlock_vm.Address_space
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

(* --- Trace JIT: threaded OCaml closure chains ------------------------

   The interpreter pays fetch + decode + dispatch for every instruction,
   even with the per-page decode cache.  This module removes all three
   on hot paths: once a basic-block head has been entered [threshold]
   times, the straight-line run starting there — extended across
   unconditional branches, inlined calls and matched returns into a
   superblock — is compiled into a chain of OCaml closures, one per
   instruction, each doing its register/memory work directly and
   tail-calling the next.  Conditional branches become guards that side
   exit back to the interpreter when the unfollowed direction is taken;
   loads and stores carry per-site inline caches and fall back to the
   address space's checked accessors (exact fault semantics) on any
   miss.

   Coherence rides exactly the decode cache's protocol:

   - every compiled instruction is recorded as a (segment, offset, word)
     dependency; entry validation compares [Segment.version] per
     dependency run and degrades to word verification when the version
     moved (self-modifying and code-adjacent data writes), re-keying or
     discarding the trace;
   - mapping geometry is pinned under [As.epoch]; when the epoch moved,
     entry validation re-resolves [As.exec_view] per dependency run and
     only re-stamps the trace when segment identity and delta are
     unchanged;
   - the epoch provably cannot change {e during} a trace run (only the
     kernel bumps it, and traces exit to the kernel for every syscall
     and fault), so inline data caches are validated purely by an epoch
     stamp taken once at entry — plus [Segment.page_gen] for load
     caches, which hold raw page bytes that must be dropped when a COW
     break or drop swaps the chunk out from under them;
   - a store executed {e inside} a trace re-checks the trace's own code
     dependencies and side exits (then invalidates) when it wrote over
     them, so self-modifying code can never run one stale instruction.

   Simulated costs are bit-identical to the interpreter, but the
   bookkeeping is batched instead of per-instruction: fuel is threaded
   through the chain (one decrement per instruction) and the
   instruction counter is settled at every exit as
   [entry fuel - remaining fuel] — the two are in lockstep because
   every step consumes exactly one fuel.  A trace only runs when the
   remaining quantum covers its full static length, so no step needs a
   fuel check; the quantum's tail is always interpreted, landing
   quantum expiry on the same instruction boundary as the interpreter.
   A faulting or trapping instruction bills its own tick on the way out
   (like [Cpu.step], which bills before executing), and syscall/halt
   exits replicate [Cpu.run_trap]'s accounting exactly. *)

let enabled = ref (Sys.getenv_opt "HEMLOCK_NO_JIT" = None)
let log_enabled = ref (Sys.getenv_opt "HEMLOCK_JIT_LOG" <> None)

let default_threshold = 50

let threshold =
  ref
    (match Sys.getenv_opt "HEMLOCK_JIT_THRESHOLD" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> default_threshold)
    | None -> default_threshold)

let max_insns = 512
let max_inline = 16
let min_insns = 3

exception Error of { e_pc : int; e_msg : string }

(* How a trace run ended.  [c_pc] (and for faults [c_fuel]) in the
   state's context carry the resume point; see [resume_pc]. *)
type exit = X_side of int | X_halt of int * int | X_syscall of int

type step = int -> exit

(* [c_fin] is the fuel the current run entered with: every exit settles
   the instruction counter as [c_fin - remaining]. *)
type ctx = {
  mutable c_pc : int;
  mutable c_fuel : int;
  mutable c_epoch : int;
  mutable c_fin : int;
}

(* One contiguous run of compiled code words: the unit of invalidation
   checking.  [d_ver] is re-stamped whenever word verification proves
   the bytes unchanged, mirroring the decode cache's degradation. *)
type dep = {
  d_vlo : int;  (* vaddr of the first word *)
  d_seg : Segment.t;
  d_delta : int;  (* segment offset = vaddr + delta *)
  d_words : int array;
  mutable d_ver : int;
}

type trace = {
  tr_entry : int;
  tr_len : int;
  tr_deps : dep array;
  mutable tr_epoch : int;
  tr_valid : bool ref;
  tr_first : step;
}

type entry = Counting of int | Compiled of trace

type state = {
  st_regs : int array;
  st_ctx : ctx;
  st_tbl : (int, entry) Hashtbl.t;
  mutable st_space : As.t option;
}

type outcome = Missed | Ran of exit

let make regs =
  {
    st_regs = regs;
    st_ctx = { c_pc = 0; c_fuel = 0; c_epoch = -1; c_fin = 0 };
    st_tbl = Hashtbl.create 64;
    st_space = None;
  }

let resume_pc st = st.st_ctx.c_pc
let resume_fuel st = st.st_ctx.c_fuel

(* --- superblock selection ------------------------------------------- *)

type kind =
  | K_plain
  | K_br_exit of int  (* conditional: side exit to target when taken *)
  | K_br_loop  (* conditional: taken edge loops to the trace entry *)
  | K_jump  (* unconditional, followed in-line: pure bill *)
  | K_jal  (* inlined call: set ra, continue at the target *)
  | K_jal_exit of int  (* call at the inline-depth cap: exec, then exit *)
  | K_jr_guard of int  (* matched return: guard regs[rs] = expected *)
  | K_jr_guess of int  (* monomorphic return/jump: guard on the target
                          the register held at compile time *)
  | K_jalr_guess of int  (* monomorphic indirect call: set rd, guard,
                            continue inline at the compile-time target *)
  | K_jalr_exit  (* indirect call at the inline-depth cap: exec, exit *)
  | K_syscall
  | K_halt

type sel = { s_pc : int; s_word : int; s_insn : Insn.t; s_kind : kind }

type tail = T_loop | T_exit of int | T_none

type dep_run = {
  dr_vlo : int;
  dr_seg : Segment.t;
  dr_delta : int;
  dr_hi : int;
  mutable dr_words_rev : int list;
  mutable dr_next : int;
}

(* [regs] is the live register file at the moment of compilation: the
   trace runs immediately after selection, so a register holding an
   indirect-jump target right now holds the target of the run about to
   happen.  Selection carries that knowledge forward with a small
   constant-propagation pass (mirroring the interpreter's arithmetic,
   peeking current memory for loads from known addresses), so that an
   indirect call through a linker jump slot — [lw t, slot(gp); jalr t]
   — is predicted from the slot's {e current} contents rather than a
   stale register.  Indirect calls and returns then compile as
   {e monomorphic guesses}: guard on the predicted target, continue
   inline through it, side exit to the true target on a mispredict —
   which is what lets traces span the linker's jump-slot calls and
   returns instead of breaking at every one.  A wrong prediction is
   never wrong execution, only a guaranteed side exit. *)
let select regs space entry =
  let sels = ref [] in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  let runs = ref [] in
  let cur = ref None in
  let tail = ref T_none in
  let ras = ref [] in
  let depth = ref 0 in
  (* Abstract register file: [Some v] = the register will hold exactly
     [v] when execution reaches this point of the trace (assuming every
     guard before it holds). Seeded from the live registers. *)
  let abs = Array.init 32 (fun i -> Some (Array.unsafe_get regs i)) in
  abs.(0) <- Some 0;
  let aval r = if r = 0 then Some 0 else Array.unsafe_get abs r in
  let aset r v = if r <> 0 then Array.unsafe_set abs r v in
  let known r f = match aval r with Some v -> Some (f v) | None -> None in
  let known2 r1 r2 f =
    match (aval r1, aval r2) with
    | Some a, Some b -> Some (f a b)
    | _ -> None
  in
  let m f = Option.map Codec.mask32 f in
  let peek_u32 a =
    if a land 3 <> 0 then None
    else
      match As.data_view space a Prot.Read with
      | Some (seg, delta, hi) when a + 4 <= hi ->
        Some (Segment.get_u32 seg (a + delta))
      | _ -> None
  in
  (* Advance the abstract state over one instruction, mirroring the
     interpreter's value semantics exactly (set_reg masks to 32 bits;
     signed compares sign-extend). *)
  let abs_step insn pc =
    let sx = Codec.sext32 in
    match insn with
    | Insn.Sll (rd, rt, sh) -> aset rd (m (known rt (fun v -> v lsl sh)))
    | Insn.Srl (rd, rt, sh) -> aset rd (m (known rt (fun v -> v lsr sh)))
    | Insn.Sra (rd, rt, sh) -> aset rd (m (known rt (fun v -> sx v asr sh)))
    | Insn.Add (rd, rs, rt) -> aset rd (m (known2 rs rt ( + )))
    | Insn.Sub (rd, rs, rt) -> aset rd (m (known2 rs rt ( - )))
    | Insn.Mul (rd, rs, rt) ->
      aset rd (m (known2 rs rt (fun a b -> sx a * sx b)))
    | Insn.Div (rd, _, _) | Insn.Rem (rd, _, _) ->
      (* Folding a division would also have to fold its zero trap;
         not worth it for a guess. *)
      aset rd None
    | Insn.And (rd, rs, rt) -> aset rd (m (known2 rs rt ( land )))
    | Insn.Or (rd, rs, rt) -> aset rd (m (known2 rs rt ( lor )))
    | Insn.Xor (rd, rs, rt) -> aset rd (m (known2 rs rt ( lxor )))
    | Insn.Slt (rd, rs, rt) ->
      aset rd (known2 rs rt (fun a b -> if sx a < sx b then 1 else 0))
    | Insn.Sltu (rd, rs, rt) ->
      aset rd (known2 rs rt (fun a b -> if a < b then 1 else 0))
    | Insn.Addi (rt, rs, imm) -> aset rt (m (known rs (fun v -> v + imm)))
    | Insn.Slti (rt, rs, imm) ->
      aset rt (known rs (fun v -> if sx v < imm then 1 else 0))
    | Insn.Andi (rt, rs, imm) -> aset rt (m (known rs (fun v -> v land imm)))
    | Insn.Ori (rt, rs, imm) -> aset rt (m (known rs (fun v -> v lor imm)))
    | Insn.Xori (rt, rs, imm) -> aset rt (m (known rs (fun v -> v lxor imm)))
    | Insn.Lui (rt, imm) -> aset rt (Some (Codec.mask32 (imm lsl 16)))
    | Insn.Lw (rt, base, off) ->
      aset rt
        (match aval base with
        | Some v -> peek_u32 (Codec.mask32 (v + off))
        | None -> None)
    | Insn.Lb (rt, _, _) -> aset rt None
    | Insn.Sw _ | Insn.Sb _ | Insn.Beq _ | Insn.Bne _ | Insn.Blez _
    | Insn.Bgtz _ | Insn.J _ | Insn.Jr _ | Insn.Break ->
      ()
    | Insn.Jal _ -> aset Reg.ra (Some (Codec.mask32 (pc + 4)))
    | Insn.Jalr (rd, _) -> aset rd (Some (Codec.mask32 (pc + 4)))
    | Insn.Syscall ->
      (* The kernel may write any register before resuming. *)
      Array.fill abs 1 31 None
  in
  let dep_add pc word seg delta hi =
    match !cur with
    | Some r
      when r.dr_seg == seg && r.dr_delta = delta && pc = r.dr_next
           && pc + 4 <= r.dr_hi ->
      r.dr_words_rev <- word :: r.dr_words_rev;
      r.dr_next <- pc + 4
    | _ ->
      (match !cur with Some r -> runs := r :: !runs | None -> ());
      cur :=
        Some
          {
            dr_vlo = pc;
            dr_seg = seg;
            dr_delta = delta;
            dr_hi = hi;
            dr_words_rev = [ word ];
            dr_next = pc + 4;
          }
  in
  let fetch pc =
    match As.exec_view space pc with
    | seg, delta, hi -> (
      let word = Segment.get_u32 seg (pc + delta) in
      match Insn.decode word with
      | insn -> Some (seg, delta, hi, word, insn)
      | exception Failure _ -> None)
    | exception As.Fault _ -> None
  in
  let rec go pc =
    if !count >= max_insns then tail := T_exit pc
    else if pc = entry && !count > 0 then tail := T_loop
    else if Hashtbl.mem seen pc then tail := T_exit pc
    else
      match fetch pc with
      | None -> tail := T_exit pc
      | Some (seg, delta, hi, word, insn) -> (
        Hashtbl.add seen pc ();
        incr count;
        dep_add pc word seg delta hi;
        let push kind =
          sels := { s_pc = pc; s_word = word; s_insn = insn; s_kind = kind } :: !sels
        in
        match insn with
        | Insn.Break -> push K_halt
        | Insn.Syscall -> push K_syscall
        | Insn.J field ->
          push K_jump;
          go (Insn.jump_target ~pc field)
        | Insn.Jal field ->
          let target = Insn.jump_target ~pc field in
          if !depth >= max_inline then push (K_jal_exit target)
          else begin
            abs_step insn pc;
            ras := (pc + 4) :: !ras;
            incr depth;
            push K_jal;
            go target
          end
        | Insn.Jr rs -> (
          (* Only [jr ra] is a return; a [jr] through any other register
             is an indirect jump (the compiler's out-of-range call
             veneers are [lui at; ori at; jr at]) and must follow the
             jump target, not the pending return address. *)
          match !ras with
          | ret :: rest when rs = Reg.ra ->
            ras := rest;
            decr depth;
            push (K_jr_guard ret);
            go ret
          | _ ->
            let guess =
              match aval rs with
              | Some v -> v
              | None -> Array.unsafe_get regs rs
            in
            push (K_jr_guess guess);
            go guess)
        | Insn.Jalr (_, rs) ->
          if !depth >= max_inline then push K_jalr_exit
          else begin
            (* Read the prediction before the abstract rd write, like
               the runtime guard reads the target before writing rd. *)
            let guess =
              match aval rs with
              | Some v -> v
              | None -> Array.unsafe_get regs rs
            in
            abs_step insn pc;
            ras := (pc + 4) :: !ras;
            incr depth;
            push (K_jalr_guess guess);
            go guess
          end
        | Insn.Beq (rs, rt, off) when rs = rt ->
          (* Always taken: follow it like an unconditional jump. *)
          push K_jump;
          go (pc + 4 + (4 * off))
        | Insn.Beq (_, _, off)
        | Insn.Bne (_, _, off)
        | Insn.Blez (_, off)
        | Insn.Bgtz (_, off) ->
          let taken = pc + 4 + (4 * off) in
          if taken = entry then push K_br_loop else push (K_br_exit taken);
          go (pc + 4)
        | _ ->
          abs_step insn pc;
          push K_plain;
          go (pc + 4))
  in
  go entry;
  if !count < min_insns then None
  else begin
    (match !cur with Some r -> runs := r :: !runs | None -> ());
    let deps =
      List.rev_map
        (fun r ->
          {
            d_vlo = r.dr_vlo;
            d_seg = r.dr_seg;
            d_delta = r.dr_delta;
            d_words = Array.of_list (List.rev r.dr_words_rev);
            d_ver = Segment.version r.dr_seg;
          })
        !runs
      |> Array.of_list
    in
    Some (List.rev !sels, !tail, deps)
  end

(* --- validation ------------------------------------------------------ *)

(* The decode cache's degradation, per dependency run: an untouched
   version proves the bytes; a moved version falls back to re-reading
   and comparing every word, re-stamping the version on an exact match
   so the next check is cheap again. *)
let dep_words_current d =
  let ver = Segment.version d.d_seg in
  ver = d.d_ver
  ||
  let n = Array.length d.d_words in
  let rec ok i =
    i >= n
    || Segment.get_u32 d.d_seg (d.d_vlo + (4 * i) + d.d_delta)
       = Array.unsafe_get d.d_words i
       && ok (i + 1)
  in
  if ok 0 then begin
    d.d_ver <- ver;
    true
  end
  else false

(* Epoch moved between runs: mappings may have changed under the trace.
   Re-resolve the geometry of every dependency run; the trace survives
   only if each still fetches from the same segment at the same delta
   (and the words check out), because the store guards compiled into it
   reference those segments by identity. *)
let revalidate_geometry tr space =
  let ok =
    try
      Array.for_all
        (fun d ->
          match As.exec_view space d.d_vlo with
          | seg, delta, hi ->
            seg == d.d_seg && delta = d.d_delta
            && d.d_vlo + (4 * Array.length d.d_words) <= hi
            && dep_words_current d)
        tr.tr_deps
    with As.Fault _ -> false
  in
  if ok then tr.tr_epoch <- As.epoch space;
  ok

let validate tr space =
  !(tr.tr_valid)
  &&
  if As.epoch space = tr.tr_epoch then Array.for_all dep_words_current tr.tr_deps
  else revalidate_geometry tr space

(* --- inline data caches ---------------------------------------------- *)

let pmask = Layout.page_size - 1
let pbase_mask = lnot pmask

(* Per-load-site cache: raw page bytes, valid while the address space
   epoch (stamped at trace entry) and the segment's page-table
   generation stand still.  In-place writes to the page are immediately
   visible through the cached bytes; anything that swaps the chunk (COW
   break, drop, replace) bumps [page_gen] and forces a refill. *)
type lic = {
  mutable l_page : int;  (* vaddr page base; -1 = invalid *)
  mutable l_hi : int;  (* exclusive access bound within page & mapping *)
  mutable l_bytes : Bytes.t;
  mutable l_gen : int;
  mutable l_seg : Segment.t;
  mutable l_epoch : int;
}

(* Per-store-site cache, two tiers.

   Raw tier ([s_gen] >= 0): the mapped page is exclusively owned
   ([Segment.owned_page_view]), so a hit writes the page bytes directly
   and bumps the segment version — exactly what [Segment.set_u32]'s
   owned-page arm would do.  [s_lim] folds every bound into one compare:
   the mapping limit, the page end, and the segment's logical size (the
   write must not grow [size], which the raw path cannot do).  Validity
   rides on the trace-entry epoch and the segment's [page_gen], which
   moves on COW breaks, on [copy] sharing the page out, and on resizes.

   Geometry tier: mapping geometry only; the store goes through
   [Segment.set_*], keeping the identical-write skip and size-growth
   semantics for shared pages.  Both tiers are filled only for mappings
   whose *effective* protection allows the write, so a COW mapping is
   never store-cached (its resolution bumps the epoch anyway). *)
type sic = {
  mutable s_page : int;
  mutable s_hi : int;
  mutable s_delta : int;
  mutable s_seg : Segment.t;
  mutable s_epoch : int;
  mutable s_bytes : Bytes.t;
  mutable s_gen : int;  (* raw tier stamp; -1 = geometry tier only *)
  mutable s_lim : int;  (* raw tier exclusive vaddr bound *)
  (* Whether the cached segment backs any of this trace's own code
     dependencies.  If not, a store through the cache provably cannot
     invalidate the trace and the post-store dep guard is skipped. *)
  mutable s_code : bool;
}

let fill_lic ic ctx space a =
  ic.l_page <- -1;
  match As.data_view space a Prot.Read with
  | Some (seg, delta, hi) when delta land pmask = 0 -> (
    match Segment.page_view seg (a + delta) with
    | Some (bytes, gen) ->
      ic.l_seg <- seg;
      ic.l_bytes <- bytes;
      ic.l_gen <- gen;
      ic.l_epoch <- ctx.c_epoch;
      ic.l_page <- a land pbase_mask;
      ic.l_hi <- min hi (ic.l_page + Layout.page_size)
    | None -> ())
  | _ -> ()

let fill_sic ic ctx space a =
  ic.s_page <- -1;
  ic.s_gen <- -1;
  match As.data_view space a Prot.Write with
  | Some (seg, delta, hi) when delta land pmask = 0 ->
    ic.s_seg <- seg;
    ic.s_delta <- delta;
    ic.s_epoch <- ctx.c_epoch;
    ic.s_page <- a land pbase_mask;
    ic.s_hi <- min hi (ic.s_page + Layout.page_size);
    (match Segment.owned_page_view seg (a + delta) with
    | Some (bytes, gen) ->
      ic.s_bytes <- bytes;
      ic.s_gen <- gen;
      (* [off + n <= size] iff [a + n <= size - delta]. *)
      ic.s_lim <- min ic.s_hi (Segment.size seg - delta)
    | None -> ())
  | _ -> ()

(* --- closure compilation --------------------------------------------- *)

let note_of = function
  | K_plain -> ""
  | K_br_exit t -> Printf.sprintf "guard: taken -> exit 0x%08x" t
  | K_br_loop -> "guard: taken -> loop to entry"
  | K_jump -> "followed in-line"
  | K_jal -> "inlined call"
  | K_jal_exit t -> Printf.sprintf "call exit -> 0x%08x (inline cap)" t
  | K_jr_guard r -> Printf.sprintf "guard: return = 0x%08x else exit" r
  | K_jr_guess r -> Printf.sprintf "guard: monomorphic target = 0x%08x else exit" r
  | K_jalr_guess r ->
    Printf.sprintf "guard: monomorphic call = 0x%08x else exit" r
  | K_jalr_exit -> "indirect call exit (inline cap)"
  | K_syscall -> "syscall exit"
  | K_halt -> "halt exit"

let compile st space entry_pc =
  match select st.st_regs space entry_pc with
  | None -> None
  | Some (sels, tail, deps) ->
    let regs = st.st_regs in
    let ctx = st.st_ctx in
    let valid = ref true in
    let head = ref (fun _ -> assert false) in
    let anchor_seg = deps.(0).d_seg in
    let ndeps = Array.length deps in
    (* Post-store code-invalidation guard: cheap version compares,
       specialised for the overwhelmingly common single-run trace. *)
    let deps_fast =
      if ndeps = 1 then begin
        let d = deps.(0) in
        fun () -> Segment.version d.d_seg = d.d_ver
      end
      else
        fun () ->
        let rec ok i =
          i >= ndeps
          ||
          let d = Array.unsafe_get deps i in
          Segment.version d.d_seg = d.d_ver && ok (i + 1)
        in
        ok 0
    in
    let deps_reverify () = Array.for_all dep_words_current deps in
    let seg_in_deps seg =
      let rec go i =
        i < ndeps && ((Array.unsafe_get deps i).d_seg == seg || go (i + 1))
      in
      go 0
    in
    let tr_len = List.length sels in
    let store_guard_failed next_pc fuel =
      (* The store really changed compiled code: stop before any stale
         instruction can run and let the entry path recompile. *)
      valid := false;
      (Stats.cur ()).instructions <-
        (Stats.cur ()).instructions + (ctx.c_fin - fuel);
      (Stats.cur ()).jit_exits <- (Stats.cur ()).jit_exits + 1;
      ctx.c_pc <- next_pc;
      X_side fuel
    in
    let side_exit target fuel =
      if !log_enabled then
        Printf.eprintf "[jit] trace@0x%08x side exit -> 0x%08x\n%!" entry_pc
          target;
      (Stats.cur ()).instructions <-
        (Stats.cur ()).instructions + (ctx.c_fin - fuel);
      (Stats.cur ()).jit_exits <- (Stats.cur ()).jit_exits + 1;
      ctx.c_pc <- target;
      X_side fuel
    in
    (* The loop edge is the only fuel check in the whole chain: loop
       only while a full further iteration fits in the quantum, and
       hand the tail back to the interpreter otherwise (not counted as
       a trace break — nothing was mispredicted).  Every re-entry into
       [head] — the fall-off-the-end tail and any taken mid-trace
       branch back to the entry — must pass through this gate: the
       steps themselves never check fuel, so an ungated cycle would
       spin forever on a divergent program. *)
    let loop_edge fuel =
      if fuel >= tr_len then !head fuel
      else begin
        (Stats.cur ()).instructions <-
          (Stats.cur ()).instructions + (ctx.c_fin - fuel);
        ctx.c_pc <- entry_pc;
        X_side fuel
      end
    in
    let tail_step =
      match tail with
      | T_loop -> loop_edge
      | T_exit pc -> fun fuel -> side_exit pc fuel
      | T_none -> fun _ -> assert false
    in
    (* Steps carry no fuel check and no instruction billing: the entry
       gate guarantees [tr_len] fuel, every step consumes exactly one,
       and the exit helpers settle the counter from the difference.
       [Codec.mask32]/[Codec.sext32] are inlined by hand (no flambda):
       register values are already masked, so sign extension is one
       test on bit 31. *)
    let new_lic () =
      {
        l_page = -1;
        l_hi = 0;
        l_bytes = Bytes.empty;
        l_gen = -1;
        l_seg = anchor_seg;
        l_epoch = -1;
      }
    in
    let new_sic () =
      {
        s_page = -1;
        s_hi = 0;
        s_delta = 0;
        s_seg = anchor_seg;
        s_epoch = -1;
        s_bytes = Bytes.empty;
        s_gen = -1;
        s_lim = 0;
        s_code = true;
      }
    in
    let step_of sel next =
      let pc = sel.s_pc in
      let skip () fuel = next (fuel - 1) in
      match sel.s_kind with
      | K_halt ->
        fun fuel ->
          (Stats.cur ()).instructions <-
            (Stats.cur ()).instructions + (ctx.c_fin - (fuel - 1));
          ctx.c_pc <- pc;
          let a0 = Array.unsafe_get regs Reg.a0 in
          X_halt
            ( (if a0 land 0x8000_0000 <> 0 then a0 - 0x1_0000_0000 else a0),
              fuel - 1 )
      | K_syscall ->
        fun fuel ->
          (Stats.cur ()).instructions <-
            (Stats.cur ()).instructions + (ctx.c_fin - (fuel - 1));
          (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
          ctx.c_pc <- pc + 4;
          X_syscall (fuel - 1)
      | K_jump -> skip ()
      | K_jal ->
        let ret = Codec.mask32 (pc + 4) in
        fun fuel ->
          Array.unsafe_set regs Reg.ra ret;
          next (fuel - 1)
      | K_jal_exit target ->
        let ret = Codec.mask32 (pc + 4) in
        fun fuel ->
          Array.unsafe_set regs Reg.ra ret;
          side_exit target (fuel - 1)
      | K_jr_guard expected | K_jr_guess expected -> (
        match sel.s_insn with
        | Insn.Jr rs ->
          fun fuel ->
            let target = Array.unsafe_get regs rs in
            if target = expected then next (fuel - 1)
            else side_exit target (fuel - 1)
        | _ -> assert false)
      | K_jalr_guess expected -> (
        match sel.s_insn with
        | Insn.Jalr (rd, rs) ->
          let ret = Codec.mask32 (pc + 4) in
          fun fuel ->
            (* Read the target before writing rd: Jalr rd rs with
               rd = rs jumps to the *old* value, like the interpreter. *)
            let target = Array.unsafe_get regs rs in
            if rd <> 0 then Array.unsafe_set regs rd ret;
            if target = expected then next (fuel - 1)
            else side_exit target (fuel - 1)
        | _ -> assert false)
      | K_jalr_exit -> (
        match sel.s_insn with
        | Insn.Jalr (rd, rs) ->
          let ret = Codec.mask32 (pc + 4) in
          fun fuel ->
            let target = Array.unsafe_get regs rs in
            if rd <> 0 then Array.unsafe_set regs rd ret;
            side_exit target (fuel - 1)
        | _ -> assert false)
      | K_br_exit _ | K_br_loop -> (
        let taken_step =
          match sel.s_kind with
          | K_br_exit target -> fun fuel -> side_exit target fuel
          | K_br_loop -> loop_edge
          | _ -> assert false
        in
        match sel.s_insn with
        | Insn.Beq (rs, rt, _) ->
          fun fuel ->
            if Array.unsafe_get regs rs = Array.unsafe_get regs rt then
              taken_step (fuel - 1)
            else next (fuel - 1)
        | Insn.Bne (rs, rt, _) ->
          fun fuel ->
            if Array.unsafe_get regs rs <> Array.unsafe_get regs rt then
              taken_step (fuel - 1)
            else next (fuel - 1)
        | Insn.Blez (rs, _) ->
          fun fuel ->
            let v = Array.unsafe_get regs rs in
            if v = 0 || v land 0x8000_0000 <> 0 then taken_step (fuel - 1)
            else next (fuel - 1)
        | Insn.Bgtz (rs, _) ->
          fun fuel ->
            let v = Array.unsafe_get regs rs in
            if v <> 0 && v land 0x8000_0000 = 0 then taken_step (fuel - 1)
            else next (fuel - 1)
        | _ -> assert false)
      | K_plain -> (
        let sx v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v in
        match sel.s_insn with
        | Insn.Sll (rd, rt, sh) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (Array.unsafe_get regs rt lsl sh land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Srl (rd, rt, sh) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd (Array.unsafe_get regs rt lsr sh);
            next (fuel - 1)
        | Insn.Sra (rd, rt, sh) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (sx (Array.unsafe_get regs rt) asr sh land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Add (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              ((Array.unsafe_get regs rs + Array.unsafe_get regs rt)
              land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Sub (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              ((Array.unsafe_get regs rs - Array.unsafe_get regs rt)
              land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Mul (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (sx (Array.unsafe_get regs rs)
              * sx (Array.unsafe_get regs rt)
              land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Div (rd, rs, rt) ->
          fun fuel ->
            if Array.unsafe_get regs rt = 0 then begin
              ctx.c_pc <- pc;
              ctx.c_fuel <- fuel;
              raise (Error { e_pc = pc; e_msg = "division by zero" })
            end;
            if rd <> 0 then
              Array.unsafe_set regs rd
                (sx (Array.unsafe_get regs rs)
                / sx (Array.unsafe_get regs rt)
                land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Rem (rd, rs, rt) ->
          fun fuel ->
            if Array.unsafe_get regs rt = 0 then begin
              ctx.c_pc <- pc;
              ctx.c_fuel <- fuel;
              raise (Error { e_pc = pc; e_msg = "remainder by zero" })
            end;
            if rd <> 0 then
              Array.unsafe_set regs rd
                (sx (Array.unsafe_get regs rs)
                mod sx (Array.unsafe_get regs rt)
                land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.And (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (Array.unsafe_get regs rs land Array.unsafe_get regs rt);
            next (fuel - 1)
        | Insn.Or (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (Array.unsafe_get regs rs lor Array.unsafe_get regs rt);
            next (fuel - 1)
        | Insn.Xor (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (Array.unsafe_get regs rs lxor Array.unsafe_get regs rt);
            next (fuel - 1)
        | Insn.Slt (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (if sx (Array.unsafe_get regs rs) < sx (Array.unsafe_get regs rt)
               then 1
               else 0);
            next (fuel - 1)
        | Insn.Sltu (rd, rs, rt) ->
          if rd = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rd
              (if Array.unsafe_get regs rs < Array.unsafe_get regs rt then 1
               else 0);
            next (fuel - 1)
        | Insn.Addi (rt, rs, imm) ->
          if rt = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rt
              ((Array.unsafe_get regs rs + imm) land 0xFFFF_FFFF);
            next (fuel - 1)
        | Insn.Slti (rt, rs, imm) ->
          if rt = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rt
              (if sx (Array.unsafe_get regs rs) < imm then 1 else 0);
            next (fuel - 1)
        | Insn.Andi (rt, rs, imm) ->
          if rt = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rt (Array.unsafe_get regs rs land imm);
            next (fuel - 1)
        | Insn.Ori (rt, rs, imm) ->
          if rt = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rt (Array.unsafe_get regs rs lor imm);
            next (fuel - 1)
        | Insn.Xori (rt, rs, imm) ->
          if rt = 0 then skip ()
          else
            fun fuel ->
            Array.unsafe_set regs rt (Array.unsafe_get regs rs lxor imm);
            next (fuel - 1)
        | Insn.Lui (rt, imm) ->
          if rt = 0 then skip ()
          else begin
            let v = imm lsl 16 land 0xFFFF_FFFF in
            fun fuel ->
              Array.unsafe_set regs rt v;
              next (fuel - 1)
          end
        | Insn.Lw (rt, base, off) ->
          let ic = new_lic () in
          fun fuel ->
            let a = (Array.unsafe_get regs base + off) land 0xFFFF_FFFF in
            let v =
              if
                ic.l_page = a land pbase_mask
                && a + 4 <= ic.l_hi
                && ic.l_epoch = ctx.c_epoch
                && Segment.page_gen ic.l_seg = ic.l_gen
              then begin
                (* [a + 4 <= l_hi] and [a] on the cached page bound the
                   unsafe read inside the page's bytes. *)
                Codec.unsafe_get_u32 ic.l_bytes (a land pmask)
              end
              else begin
                ctx.c_pc <- pc;
                ctx.c_fuel <- fuel;
                let v = As.load_u32 space a in
                fill_lic ic ctx space a;
                v
              end
            in
            if rt <> 0 then Array.unsafe_set regs rt v;
            next (fuel - 1)
        | Insn.Lb (rt, base, off) ->
          let ic = new_lic () in
          fun fuel ->
            let a = (Array.unsafe_get regs base + off) land 0xFFFF_FFFF in
            let v =
              if
                ic.l_page = a land pbase_mask
                && a < ic.l_hi
                && ic.l_epoch = ctx.c_epoch
                && Segment.page_gen ic.l_seg = ic.l_gen
              then Char.code (Bytes.unsafe_get ic.l_bytes (a land pmask))
              else begin
                ctx.c_pc <- pc;
                ctx.c_fuel <- fuel;
                let v = As.load_u8 space a in
                fill_lic ic ctx space a;
                v
              end
            in
            if rt <> 0 then Array.unsafe_set regs rt v;
            next (fuel - 1)
        | Insn.Sw (rt, base, off) ->
          let ic = new_sic () in
          fun fuel ->
            let a = (Array.unsafe_get regs base + off) land 0xFFFF_FFFF in
            if
              ic.s_page = a land pbase_mask
              && a + 4 <= ic.s_lim
              && ic.s_epoch = ctx.c_epoch
              && Segment.page_gen ic.s_seg = ic.s_gen
            then begin
              Codec.unsafe_set_u32 ic.s_bytes (a land pmask)
                (Array.unsafe_get regs rt);
              Segment.bump_version ic.s_seg;
              if not ic.s_code then next (fuel - 1)
              else if deps_fast () || deps_reverify () then next (fuel - 1)
              else store_guard_failed (pc + 4) (fuel - 1)
            end
            else if
              ic.s_page = a land pbase_mask
              && a + 4 <= ic.s_hi
              && ic.s_epoch = ctx.c_epoch
            then begin
              Segment.set_u32 ic.s_seg (a + ic.s_delta)
                (Array.unsafe_get regs rt);
              if not ic.s_code then next (fuel - 1)
              else if deps_fast () || deps_reverify () then next (fuel - 1)
              else store_guard_failed (pc + 4) (fuel - 1)
            end
            else begin
              ctx.c_pc <- pc;
              ctx.c_fuel <- fuel;
              As.store_u32 space a (Array.unsafe_get regs rt);
              fill_sic ic ctx space a;
              ic.s_code <- ic.s_page < 0 || seg_in_deps ic.s_seg;
              if deps_fast () || deps_reverify () then next (fuel - 1)
              else store_guard_failed (pc + 4) (fuel - 1)
            end
        | Insn.Sb (rt, base, off) ->
          let ic = new_sic () in
          fun fuel ->
            let a = (Array.unsafe_get regs base + off) land 0xFFFF_FFFF in
            if
              ic.s_page = a land pbase_mask
              && a < ic.s_lim
              && ic.s_epoch = ctx.c_epoch
              && Segment.page_gen ic.s_seg = ic.s_gen
            then begin
              Bytes.unsafe_set ic.s_bytes (a land pmask)
                (Char.unsafe_chr (Array.unsafe_get regs rt land 0xFF));
              Segment.bump_version ic.s_seg;
              if not ic.s_code then next (fuel - 1)
              else if deps_fast () || deps_reverify () then next (fuel - 1)
              else store_guard_failed (pc + 4) (fuel - 1)
            end
            else if
              ic.s_page = a land pbase_mask
              && a < ic.s_hi
              && ic.s_epoch = ctx.c_epoch
            then begin
              Segment.set_u8 ic.s_seg (a + ic.s_delta)
                (Array.unsafe_get regs rt land 0xFF);
              if not ic.s_code then next (fuel - 1)
              else if deps_fast () || deps_reverify () then next (fuel - 1)
              else store_guard_failed (pc + 4) (fuel - 1)
            end
            else begin
              ctx.c_pc <- pc;
              ctx.c_fuel <- fuel;
              As.store_u8 space a (Array.unsafe_get regs rt land 0xFF);
              fill_sic ic ctx space a;
              ic.s_code <- ic.s_page < 0 || seg_in_deps ic.s_seg;
              if deps_fast () || deps_reverify () then next (fuel - 1)
              else store_guard_failed (pc + 4) (fuel - 1)
            end
        | Insn.Break | Insn.Syscall | Insn.J _ | Insn.Jal _ | Insn.Jr _
        | Insn.Jalr _ | Insn.Beq _ | Insn.Bne _ | Insn.Blez _ | Insn.Bgtz _ ->
          assert false)
    in
    (* --- pair fusion --------------------------------------------------
       Compiled code is dominated by stack push/pop idioms — an ADDI
       adjust glued to a load or store — so adjacent pairs drawn from
       {ADDI, constant writes (LUI / inlined JAL's ra), LW, SW} become
       one closure executing both instructions strictly in order.  Each
       arm is fully specialised at build time: no runtime dispatch on
       the opcode is ever introduced, because a shared dispatch site is
       exactly the kind of data-dependent indirect branch the fusion is
       trying to remove.  The second instruction stamps its own pc and
       fuel before any access that can fault or fill, so traps, side
       exits and billing are indistinguishable from the unfused chain;
       a store that overwrites trace code still exits before the next
       compiled instruction runs. *)
    (* [fl] is the fuel remaining at this instruction, stamped with the
       pc before the slow path so a fault resumes exactly here. *)
    let lw_do ic pc base off rt fl =
      let a = (Array.unsafe_get regs base + off) land 0xFFFF_FFFF in
      let v =
        if
          ic.l_page = a land pbase_mask
          && a + 4 <= ic.l_hi
          && ic.l_epoch = ctx.c_epoch
          && Segment.page_gen ic.l_seg = ic.l_gen
        then Codec.unsafe_get_u32 ic.l_bytes (a land pmask)
        else begin
          ctx.c_pc <- pc;
          ctx.c_fuel <- fl;
          let v = As.load_u32 space a in
          fill_lic ic ctx space a;
          v
        end
      in
      if rt <> 0 then Array.unsafe_set regs rt v
    in
    (* Returns false when the store overwrote this trace's own code:
       the caller must side exit before the next compiled instruction. *)
    let sw_do ic pc base off rt fl =
      let a = (Array.unsafe_get regs base + off) land 0xFFFF_FFFF in
      if
        ic.s_page = a land pbase_mask
        && a + 4 <= ic.s_lim
        && ic.s_epoch = ctx.c_epoch
        && Segment.page_gen ic.s_seg = ic.s_gen
      then begin
        Codec.unsafe_set_u32 ic.s_bytes (a land pmask) (Array.unsafe_get regs rt);
        Segment.bump_version ic.s_seg;
        (not ic.s_code) || deps_fast () || deps_reverify ()
      end
      else if
        ic.s_page = a land pbase_mask
        && a + 4 <= ic.s_hi
        && ic.s_epoch = ctx.c_epoch
      then begin
        Segment.set_u32 ic.s_seg (a + ic.s_delta) (Array.unsafe_get regs rt);
        (not ic.s_code) || deps_fast () || deps_reverify ()
      end
      else begin
        ctx.c_pc <- pc;
        ctx.c_fuel <- fl;
        As.store_u32 space a (Array.unsafe_get regs rt);
        fill_sic ic ctx space a;
        ic.s_code <- ic.s_page < 0 || seg_in_deps ic.s_seg;
        deps_fast () || deps_reverify ()
      end
    in
    (* `Li is a constant register write: LUI, an inlined JAL's ra
       write, or a followed J (a no-op, encoded as a write to r0).
       `Ori only ever fuses as the second half of a LUI/ORI veneer
       constant build; anything else stays a single closure. *)
    let op_of sel =
      match (sel.s_kind, sel.s_insn) with
      | K_jal, _ -> `Li (Reg.ra, Codec.mask32 (sel.s_pc + 4))
      | K_jump, _ -> `Li (0, 0)
      | K_plain, Insn.Lui (rt, imm) -> `Li (rt, imm lsl 16 land 0xFFFF_FFFF)
      | K_plain, Insn.Addi (rt, rs, imm) -> `Addi (rt, rs, imm)
      | K_plain, Insn.Ori (rt, rs, imm) -> `Ori (rt, rs, imm)
      | K_plain, Insn.Lw (rt, base, off) -> `Lw (rt, base, off)
      | K_plain, Insn.Sw (rt, base, off) -> `Sw (rt, base, off)
      | _ -> `No
    in
    (* [next] must be in scope before the fused closure is built: a
       two-argument [fun next fuel -> ...] partially applied would
       route every chain hop through the generic currying apply. *)
    let fused pc1 pc2 o1 o2 next =
      match (o1, o2) with
      | `Addi (r1, s1, i1), `Addi (r2, s2, i2) ->
        Some
          (fun fuel ->
            if r1 <> 0 then
              Array.unsafe_set regs r1
                ((Array.unsafe_get regs s1 + i1) land 0xFFFF_FFFF);
            if r2 <> 0 then
              Array.unsafe_set regs r2
                ((Array.unsafe_get regs s2 + i2) land 0xFFFF_FFFF);
            next (fuel - 2))
      | `Addi (r1, s1, i1), `Li (r2, v2) ->
        Some
          (fun fuel ->
            if r1 <> 0 then
              Array.unsafe_set regs r1
                ((Array.unsafe_get regs s1 + i1) land 0xFFFF_FFFF);
            if r2 <> 0 then Array.unsafe_set regs r2 v2;
            next (fuel - 2))
      | `Li (r1, v1), `Addi (r2, s2, i2) ->
        Some
          (fun fuel ->
            if r1 <> 0 then Array.unsafe_set regs r1 v1;
            if r2 <> 0 then
              Array.unsafe_set regs r2
                ((Array.unsafe_get regs s2 + i2) land 0xFFFF_FFFF);
            next (fuel - 2))
      | `Li (r1, v1), `Li (r2, v2) ->
        Some
          (fun fuel ->
            if r1 <> 0 then Array.unsafe_set regs r1 v1;
            if r2 <> 0 then Array.unsafe_set regs r2 v2;
            next (fuel - 2))
      | `Li (r1, v1), `Ori (r2, s2, i2) when s2 = r1 && r1 <> 0 ->
        (* LUI/ORI veneer: the second write is a compile-time constant. *)
        let v2 = v1 lor i2 in
        Some
          (fun fuel ->
            Array.unsafe_set regs r1 v1;
            if r2 <> 0 then Array.unsafe_set regs r2 v2;
            next (fuel - 2))
      | `Addi (r1, s1, i1), `Lw (rt, base, off) ->
        let ic = new_lic () in
        Some
          (fun fuel ->
            if r1 <> 0 then
              Array.unsafe_set regs r1
                ((Array.unsafe_get regs s1 + i1) land 0xFFFF_FFFF);
            lw_do ic pc2 base off rt (fuel - 1);
            next (fuel - 2))
      | `Li (r1, v1), `Lw (rt, base, off) ->
        let ic = new_lic () in
        Some
          (fun fuel ->
            if r1 <> 0 then Array.unsafe_set regs r1 v1;
            lw_do ic pc2 base off rt (fuel - 1);
            next (fuel - 2))
      | `Addi (r1, s1, i1), `Sw (rt, base, off) ->
        let ic = new_sic () in
        Some
          (fun fuel ->
            if r1 <> 0 then
              Array.unsafe_set regs r1
                ((Array.unsafe_get regs s1 + i1) land 0xFFFF_FFFF);
            if sw_do ic pc2 base off rt (fuel - 1) then next (fuel - 2)
            else store_guard_failed (pc2 + 4) (fuel - 2))
      | `Li (r1, v1), `Sw (rt, base, off) ->
        let ic = new_sic () in
        Some
          (fun fuel ->
            if r1 <> 0 then Array.unsafe_set regs r1 v1;
            if sw_do ic pc2 base off rt (fuel - 1) then next (fuel - 2)
            else store_guard_failed (pc2 + 4) (fuel - 2))
      | `Lw (rt, base, off), `Addi (r2, s2, i2) ->
        let ic = new_lic () in
        Some
          (fun fuel ->
            lw_do ic pc1 base off rt fuel;
            if r2 <> 0 then
              Array.unsafe_set regs r2
                ((Array.unsafe_get regs s2 + i2) land 0xFFFF_FFFF);
            next (fuel - 2))
      | `Lw (rt, base, off), `Li (r2, v2) ->
        let ic = new_lic () in
        Some
          (fun fuel ->
            lw_do ic pc1 base off rt fuel;
            if r2 <> 0 then Array.unsafe_set regs r2 v2;
            next (fuel - 2))
      | `Lw (rt1, b1, o1), `Lw (rt2, b2, o2) ->
        let ic1 = new_lic () and ic2 = new_lic () in
        Some
          (fun fuel ->
            lw_do ic1 pc1 b1 o1 rt1 fuel;
            lw_do ic2 pc2 b2 o2 rt2 (fuel - 1);
            next (fuel - 2))
      | `Lw (rt1, b1, o1), `Sw (rt2, b2, o2) ->
        let ic1 = new_lic () and ic2 = new_sic () in
        Some
          (fun fuel ->
            lw_do ic1 pc1 b1 o1 rt1 fuel;
            if sw_do ic2 pc2 b2 o2 rt2 (fuel - 1) then next (fuel - 2)
            else store_guard_failed (pc2 + 4) (fuel - 2))
      | `Sw (rt1, b1, o1), `Addi (r2, s2, i2) ->
        let ic = new_sic () in
        Some
          (fun fuel ->
            if sw_do ic pc1 b1 o1 rt1 fuel then begin
              if r2 <> 0 then
                Array.unsafe_set regs r2
                  ((Array.unsafe_get regs s2 + i2) land 0xFFFF_FFFF);
              next (fuel - 2)
            end
            else store_guard_failed (pc1 + 4) (fuel - 1))
      | `Sw (rt1, b1, o1), `Li (r2, v2) ->
        let ic = new_sic () in
        Some
          (fun fuel ->
            if sw_do ic pc1 b1 o1 rt1 fuel then begin
              if r2 <> 0 then Array.unsafe_set regs r2 v2;
              next (fuel - 2)
            end
            else store_guard_failed (pc1 + 4) (fuel - 1))
      | `Sw (rt1, b1, o1), `Lw (rt2, b2, o2) ->
        let ic1 = new_sic () and ic2 = new_lic () in
        Some
          (fun fuel ->
            if sw_do ic1 pc1 b1 o1 rt1 fuel then begin
              lw_do ic2 pc2 b2 o2 rt2 (fuel - 1);
              next (fuel - 2)
            end
            else store_guard_failed (pc1 + 4) (fuel - 1))
      | `Sw (rt1, b1, o1), `Sw (rt2, b2, o2) ->
        let ic1 = new_sic () and ic2 = new_sic () in
        Some
          (fun fuel ->
            if sw_do ic1 pc1 b1 o1 rt1 fuel then
              if sw_do ic2 pc2 b2 o2 rt2 (fuel - 1) then next (fuel - 2)
              else store_guard_failed (pc2 + 4) (fuel - 2)
            else store_guard_failed (pc1 + 4) (fuel - 1))
      | _ -> None
    in
    (* Must mirror [fused] exactly: the chain for the pair's suffix is
       only built once fusibility is known, keeping [build] linear. *)
    let fusible o1 o2 =
      match (o1, o2) with
      | (`Addi _ | `Li _ | `Lw _ | `Sw _), (`Addi _ | `Li _ | `Lw _ | `Sw _)
        ->
        true
      | `Li (r1, _), `Ori (_, s2, _) -> s2 = r1 && r1 <> 0
      | _ -> false
    in
    let rec build = function
      | [] -> tail_step
      | [ sel ] -> step_of sel tail_step
      | s1 :: (s2 :: rest2 as rest1) ->
        let o1 = op_of s1 and o2 = op_of s2 in
        if fusible o1 o2 then
          match fused s1.s_pc s2.s_pc o1 o2 (build rest2) with
          | Some step -> step
          | None -> assert false
        else step_of s1 (build rest1)
    in
    let first = build sels in
    head := first;
    if !log_enabled then begin
      prerr_string
        (Disasm.trace_listing ~entry:entry_pc
           (List.map (fun s -> (s.s_pc, s.s_word, note_of s.s_kind)) sels));
      (match tail with
      | T_loop -> Printf.eprintf "  -> loops to 0x%08x\n" entry_pc
      | T_exit pc -> Printf.eprintf "  -> exits to 0x%08x\n" pc
      | T_none -> ());
      flush stderr
    end;
    Some
      {
        tr_entry = entry_pc;
        tr_len;
        tr_deps = deps;
        tr_epoch = As.epoch space;
        tr_valid = valid;
        tr_first = first;
      }

(* --- dispatch --------------------------------------------------------- *)

let bind st space =
  match st.st_space with
  | Some sp when sp == space -> ()
  | _ ->
    (* A state is tied to one address space (the kernel pairs each CPU
       with its process's space for life); a rebind is a test harness
       reusing a CPU, so just drop everything. *)
    Hashtbl.reset st.st_tbl;
    st.st_space <- Some space

(* A trace only runs when the remaining quantum covers its full static
   length — that one check replaces a per-instruction fuel test in
   every step, and the interpreter (which stops on the exact boundary)
   always runs the quantum's tail. *)
let run_trace st space tr fuel =
  if fuel < tr.tr_len then Missed
  else begin
    let ctx = st.st_ctx in
    ctx.c_epoch <- As.epoch space;
    ctx.c_fin <- fuel;
    (Stats.cur ()).jit_hits <- (Stats.cur ()).jit_hits + 1;
    match tr.tr_first fuel with
    | x -> Ran x
    | exception e ->
      (* The trapping instruction was entered but not completed: settle
         the completed prefix plus its own tick (the interpreter bills
         before executing) and let the CPU translate the exception. *)
      (Stats.cur ()).instructions <-
        (Stats.cur ()).instructions + (ctx.c_fin - ctx.c_fuel) + 1;
      raise e
  end

let compile_and_run st space pc fuel =
  match compile st space pc with
  | Some tr ->
    (Stats.cur ()).jit_compiles <- (Stats.cur ()).jit_compiles + 1;
    Hashtbl.replace st.st_tbl pc (Compiled tr);
    run_trace st space tr fuel
  | None ->
    (* Not compilable right now (too short, or the path is unfetchable
       — e.g. a lazily-linked page still mapped no-access).  Reset the
       counter rather than blacklisting: once the page is linked the
       head warms up again and compiles. *)
    Hashtbl.replace st.st_tbl pc (Counting 0);
    Missed

let enter st space pc fuel =
  bind st space;
  match Hashtbl.find_opt st.st_tbl pc with
  | Some (Compiled tr) ->
    if validate tr space then run_trace st space tr fuel
    else begin
      (Stats.cur ()).jit_invalidations <- (Stats.cur ()).jit_invalidations + 1;
      compile_and_run st space pc fuel
    end
  | Some (Counting n) ->
    let n = n + 1 in
    if n >= !threshold then compile_and_run st space pc fuel
    else begin
      Hashtbl.replace st.st_tbl pc (Counting n);
      Missed
    end
  | None ->
    if 1 >= !threshold then compile_and_run st space pc fuel
    else begin
      Hashtbl.add st.st_tbl pc (Counting 1);
      Missed
    end

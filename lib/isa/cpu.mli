(** The interpreter.  Every fetch, load and store goes through a
    {!Hemlock_vm.Address_space.t}, so touching an unmapped or protected
    address raises {!Hemlock_vm.Address_space.Fault} {e out of}
    {!step} with the pc still pointing at the faulting instruction —
    after the kernel runs the process's SIGSEGV handler the instruction
    restarts, exactly the behaviour Hemlock's lazy linker relies on. *)

(** One page's worth of decoded instructions (see [decode_cache_enabled]). *)
type dpage

type t = {
  regs : int array;
  mutable pc : int;
  icache : dpage option array;
  jit : Trace.state;  (** per-CPU trace-JIT state (see {!Trace}) *)
}

(** Per-page decoded-instruction cache switch; defaults to [true] unless
    the [HEMLOCK_NO_DCACHE] environment variable is set.  Reuse of a
    cached decode is gated on re-reading the backing word through the
    address space, so the cache is observability-only: execution,
    faults, and simulated costs are identical either way. *)
val decode_cache_enabled : bool ref

type status =
  | Running
  | Halted of int  (** exit code *)

(** Arithmetic traps (division/remainder by zero). *)
exception Cpu_error of { pc : int; msg : string }

(** A fetched word that does not decode.  {!run_trap} converts it to
    {!Trap.Illegal} so the kernel can kill the process like a SIGILL;
    through {!step}/{!run} it propagates to the caller. *)
exception Illegal_insn of { ill_pc : int; ill_word : int }

val create : entry:int -> sp:int -> t

(** [fork t] copies registers and pc; the decode cache starts empty. *)
val fork : t -> t

val reg : t -> Reg.t -> int

(** Writes to register 0 are discarded; values are masked to 32 bits. *)
val set_reg : t -> Reg.t -> int -> unit

(** Execute one instruction.  [syscall] is invoked for SYSCALL traps
    with the pc already advanced past the instruction, so a handler that
    blocks and later resumes continues after the trap; it reads and
    writes registers itself.  May raise [Address_space.Fault] (pc
    unmoved) or [Cpu_error]. *)
val step : t -> Hemlock_vm.Address_space.t -> syscall:(t -> unit) -> status

(** [run ~fuel t as_ ~syscall] steps until halt or fuel runs out. *)
val run : fuel:int -> t -> Hemlock_vm.Address_space.t -> syscall:(t -> unit) -> status

(** Result of a {!run_trap} burst: the quantum's fuel ran dry, or the
    program trapped (syscall, fault, or halt — see {!Trap.t}). *)
type run_result = Out_of_fuel | Trapped of Trap.t

(** [run_trap ~fuel t as_] steps until the program traps or the fuel
    runs out, returning the trap (if any) and the fuel remaining, so the
    kernel can dispatch the trap and resume the same quantum.  Unlike
    {!run} no callback is involved: a SYSCALL returns [Trapped Syscall]
    with the pc past the instruction and one unit of fuel consumed, a
    memory fault returns [Trapped (Fault _)] with the pc unmoved and no
    fuel consumed, BREAK returns [Trapped (Halt code)], an undecodable
    word returns [Trapped (Illegal _)] with the pc unmoved and no fuel
    consumed.  Arithmetic traps still raise [Cpu_error].

    When the trace JIT is enabled (see {!Trace.enabled}) hot paths run
    as compiled closure chains; execution, traps and simulated costs
    are bit-identical to the plain interpreter either way. *)
val run_trap :
  fuel:int -> t -> Hemlock_vm.Address_space.t -> run_result * int

val pp : Format.formatter -> t -> unit

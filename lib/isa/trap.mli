(** The one way out of user mode.

    Everything that transfers control from an executing ISA program to
    the kernel — a memory fault, a SYSCALL instruction, a BREAK halt —
    is reified as a value of {!t} and returned from {!Cpu.run_trap}, so
    the kernel has a single dispatch point instead of a different
    ad-hoc path (exception, callback, status) per event.  Signal
    (SIGSEGV) delivery is the kernel's response to a [Fault] trap; it
    happens on the kernel side of this boundary, never inside the
    interpreter. *)

type fault = {
  f_addr : int;
  f_access : Hemlock_vm.Prot.access;
  f_reason : Hemlock_vm.Address_space.fault_reason;
}

type t =
  | Syscall
      (** SYSCALL executed; the pc is already past the instruction and
          the registers carry the number and arguments. *)
  | Fault of fault
      (** A load, store or fetch touched unmapped or protected memory;
          the pc still points at the faulting instruction, so resolving
          the fault and resuming restarts it. *)
  | Halt of int  (** BREAK: the program exited with this code. *)
  | Illegal of { ill_pc : int; ill_word : int }
      (** The fetched word does not decode to any instruction; the pc
          still points at it, no instruction was billed and no fuel was
          consumed.  The kernel treats it like SIGILL — the process is
          killed, the host simulator never dies. *)

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> t -> unit

(** Page protections.  [No_access] is how ldl maps a module whose
    references are not yet resolved, so that the first touch faults into
    the lazy linker. *)

type t = No_access | Read_only | Read_write | Read_exec | Read_write_exec

type access = Read | Write | Exec

val allows : t -> access -> bool

(** The same protection with write permission removed (reads and
    execution unchanged).  This is the {e effective} protection of a
    copy-on-write mapping: the first store takes a protection fault the
    kernel resolves by un-sharing, exactly like hardware write-protect
    bits under fork. *)
val strip_write : t -> t
val pp : Format.formatter -> t -> unit
val pp_access : Format.formatter -> access -> unit
val to_string : t -> string

module Interval_map = Hemlock_util.Interval_map
module Stats = Hemlock_util.Stats

type fault_reason = Unmapped | Protection | Not_resident

exception Fault of { addr : int; access : Prot.access; reason : fault_reason }

type share = Private | Public

type mapping = {
  seg : Segment.t;
  seg_off : int;
  prot : Prot.t;
  share : share;
  label : string;
  cow : bool;
  obj : Vm_object.t;
}

exception Cstring_unterminated of int

(* A COW mapping keeps its logical protection (what [pp] prints, what a
   later [protect] replaces) but its *effective* protection — what the
   TLB caches and every access checks — has write stripped, so the
   first store traps into the kernel's [resolve_cow] path. *)
let effective m = if m.cow then Prot.strip_write m.prot else m.prot

(* --- Software TLB ---------------------------------------------------

   A direct-mapped translation cache in front of [Interval_map.find].
   Each entry caches one page's mapping: its page base, the mapping's
   [hi] bound (accesses never straddle mapping boundaries), the constant
   [seg_off - lo] delta, and the protection.  Protection is re-checked
   on every hit, so a cached no-access page still faults — the entry is
   a cached {e translation}, not a cached {e permission}.

   Invalidation is epoch-based and conservative: [map], [unmap] and
   [protect] bump [epoch] and flush every entry.  [clone] builds a
   child with a fresh (empty) TLB.  The [epoch] is exported so the
   CPU's decoded-instruction cache can ride the same protocol. *)

let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits

type tlb_entry = {
  mutable te_page : int;  (* page base address; -1 = invalid *)
  mutable te_hi : int;  (* mapping's exclusive upper bound *)
  mutable te_delta : int;  (* seg_off - lo; offset = addr + delta *)
  mutable te_prot : Prot.t;
  mutable te_mask : int;  (* te_prot as bits (1 r / 2 w / 4 x): branch-free guard *)
  mutable te_seg : Segment.t option;  (* None = invalid (no seg pinned) *)
}

type t = {
  mutable table : mapping Interval_map.t;
  tlb : tlb_entry array;
  mutable epoch : int;
  caching : bool;
  uid : int;  (* identity for Vm_object attachment (eviction -> epoch) *)
  rlock : Range_lock.t;
      (* interval lock over this space's page ranges: faults, maps and
         materialisations on disjoint ranges run concurrently *)
  tlock : Mutex.t;  (* guards [table] read-modify-writes; see [swap_table] *)
}

(* Flipped off by setting HEMLOCK_NO_TLB, which keeps the slow path
   testable and lets the determinism tests compare both. *)
let caching_default = ref (Sys.getenv_opt "HEMLOCK_NO_TLB" = None)

let next_uid = Atomic.make 0

let fresh_tlb () =
  Array.init tlb_size (fun _ ->
      {
        te_page = -1;
        te_hi = 0;
        te_delta = 0;
        te_prot = Prot.No_access;
        te_mask = 0;
        te_seg = None;
      })

let create ?caching () =
  let caching = match caching with Some c -> c | None -> !caching_default in
  {
    table = Interval_map.empty;
    tlb = fresh_tlb ();
    epoch = 0;
    caching;
    uid = Atomic.fetch_and_add next_uid 1 + 1;
    rlock = Range_lock.create ();
    tlock = Mutex.create ();
  }

let epoch t = t.epoch

let invalidate t =
  t.epoch <- t.epoch + 1;
  Array.iter
    (fun e ->
      e.te_page <- -1;
      e.te_seg <- None)
    t.tlb

(* --- Locking ---------------------------------------------------------

   Every structural change to a space goes through two locks, always in
   this order: first an {e exclusive page-range hold} on [rlock] over
   the affected address range (the semantic exclusion — no fault
   resolution or materialisation is mid-flight on those pages), then
   [tlock] for the instant of swapping the immutable mapping table (so
   two mutators of {e disjoint} ranges, which don't conflict on
   [rlock], still can't lose each other's table update).  Readers take
   neither: [table] is an immutable snapshot read in one load, and a
   stale read is indistinguishable from the lookup having run a moment
   earlier.  [rlock] holds never nest, so the structural
   deadlock-freedom argument in [Range_lock] applies. *)

let page_range ~base ~len =
  (base lsr Layout.page_shift,
   (base + len + Layout.page_size - 1) lsr Layout.page_shift)

(* an exclusive hold on every possible page *)
let whole_lo = 0
let whole_hi = max_int

let swap_table t f =
  Mutex.lock t.tlock;
  match f t.table with
  | table ->
    t.table <- table;
    Mutex.unlock t.tlock
  | exception e ->
    Mutex.unlock t.tlock;
    raise e

(* The default kind is [Pinned]: raw mappers (tests, examples, runtime
   libraries that touch segments with no kernel around to resolve pager
   faults) get the seed's eager always-resident behaviour.  Only
   kernel-managed sites opt into pageable kinds. *)
let map t ~base ~len ~seg ?(seg_off = 0) ?(kind = Vm_object.Pinned) ~prot ~share ~label
    () =
  if not (Layout.is_page_aligned base && Layout.is_page_aligned len) then
    invalid_arg "Address_space.map: unaligned base or length";
  if len <= 0 then invalid_arg "Address_space.map: empty mapping";
  if not (Layout.is_user base && Layout.is_user (base + len - 1)) then
    invalid_arg "Address_space.map: outside user space";
  let lo, hi = page_range ~base ~len in
  Range_lock.with_range t.rlock ~lo ~hi Range_lock.Exclusive (fun () ->
      (* the overlap check needs no [tlock]: any mapping that could
         overlap was added under a conflicting [rlock] hold *)
      if Interval_map.overlaps ~lo:base ~hi:(base + len) t.table then
        invalid_arg (Printf.sprintf "Address_space.map: 0x%x+0x%x overlaps" base len);
      let obj = Vm_object.get_or_create seg kind in
      Vm_object.attach obj ~uid:t.uid (fun () -> invalidate t);
      swap_table t
        (Interval_map.add ~lo:base ~hi:(base + len)
           { seg; seg_off; prot; share; label; cow = false; obj });
      invalidate t;
      (Stats.cur ()).pages_mapped <-
        (Stats.cur ()).pages_mapped + (len / Layout.page_size))

let unmap t addr =
  match Interval_map.find addr t.table with
  | None ->
    (* nothing to remove; flush anyway to match the historical path *)
    invalidate t
  | Some (mlo, mhi, _) ->
    let lo, hi = page_range ~base:mlo ~len:(mhi - mlo) in
    Range_lock.with_range t.rlock ~lo ~hi Range_lock.Exclusive (fun () ->
        (match Interval_map.find addr t.table with
        | Some (_, _, m) -> Vm_object.detach m.obj ~uid:t.uid
        | None -> ());
        swap_table t (Interval_map.remove addr);
        invalidate t)

(* Drop every object attachment so eviction stops invalidating a dead
   space.  Process exit uses this alone: the mapping table survives for
   post-mortem inspection (reads stay correct — the segments hold the
   contents regardless of residency).  Segment page refcounts are
   deliberately {e not} released — see the rule in [Segment]. *)
let detach_all t =
  Interval_map.fold
    (fun _ _ m () -> Vm_object.detach m.obj ~uid:t.uid)
    t.table ()

(* Full deterministic teardown: exec discarding the replaced image. *)
let teardown t =
  Range_lock.with_range t.rlock ~lo:whole_lo ~hi:whole_hi Range_lock.Exclusive
    (fun () ->
      detach_all t;
      swap_table t (fun _ -> Interval_map.empty);
      invalidate t)

let protect t addr prot =
  match Interval_map.find addr t.table with
  | None ->
    (* preserve the unlocked path's behaviour on an unmapped address *)
    swap_table t (Interval_map.update addr (fun m -> { m with prot }));
    invalidate t
  | Some (mlo, mhi, _) ->
    let lo, hi = page_range ~base:mlo ~len:(mhi - mlo) in
    Range_lock.with_range t.rlock ~lo ~hi Range_lock.Exclusive (fun () ->
        swap_table t (Interval_map.update addr (fun m -> { m with prot }));
        invalidate t)

let mapping_at t addr = Interval_map.find addr t.table

let mappings t = Interval_map.to_list t.table

let find_gap t ~lo ~hi ~size =
  Interval_map.first_gap ~lo ~hi ~size:(Layout.page_up size) t.table

(* [lookup] resolves the mapping covering [addr] and returns
   [(seg, off, run, prot)] where [run] is the number of mapped bytes
   from [addr] to the mapping's end.  It fills the TLB but performs no
   protection check — callers check in the same order as the historical
   slow path (bounds before protection) so fault reasons are stable. *)

(* Public-region mappings are 1 MB-aligned, so their base pages all share
   the same low page-number bits; folding in higher bits keeps a working
   set of shared modules from colliding on one TLB entry. *)
let tlb_entry t addr =
  let p = addr lsr Layout.page_shift in
  (* the mask keeps the index in bounds, so skip the array check *)
  Array.unsafe_get t.tlb ((p lxor (p lsr 8)) land (tlb_size - 1))

let prot_mask p =
  (if Prot.allows p Prot.Read then 1 else 0)
  lor (if Prot.allows p Prot.Write then 2 else 0)
  lor (if Prot.allows p Prot.Exec then 4 else 0)

let lookup_slow t addr access =
  match Interval_map.find addr t.table with
  | None -> raise (Fault { addr; access; reason = Unmapped })
  | Some (lo, hi, m) ->
    let off = m.seg_off + (addr - lo) in
    (* Residency comes after bounds but before protection: a page that
       is mapped but not materialised faults [Not_resident], which the
       kernel resolves internally (never delivered, never billed) —
       the same protocol as COW.  Raising {e before} the TLB fill keeps
       the invariant that a valid TLB entry implies a resident page:
       eviction bumps the epoch of every attached space. *)
    if not (Vm_object.resident m.obj off) then
      raise (Fault { addr; access; reason = Not_resident });
    let prot = effective m in
    if t.caching then begin
      let e = tlb_entry t addr in
      e.te_page <- Layout.page_down addr;
      e.te_hi <- hi;
      e.te_delta <- m.seg_off - lo;
      e.te_prot <- prot;
      e.te_mask <- prot_mask prot;
      e.te_seg <- Some m.seg;
      (* Later writes through this entry bypass the slow path, so a
         write-granting fill marks the page dirty conservatively. *)
      Vm_object.touch m.obj off
        ~write:(access = Prot.Write || e.te_mask land 2 <> 0)
    end
    else Vm_object.touch m.obj off ~write:(access = Prot.Write);
    (m.seg, off, hi - addr, prot)

let lookup t addr access =
  if not t.caching then lookup_slow t addr access
  else begin
    let e = tlb_entry t addr in
    match e.te_seg with
    | Some seg when e.te_page = Layout.page_down addr ->
      (Stats.cur ()).tlb_hits <- (Stats.cur ()).tlb_hits + 1;
      (seg, addr + e.te_delta, e.te_hi - addr, e.te_prot)
    | Some _ | None ->
      (Stats.cur ()).tlb_misses <- (Stats.cur ()).tlb_misses + 1;
      lookup_slow t addr access
  end

let translate t addr access width =
  let seg, off, run, prot = lookup t addr access in
  if width > run then raise (Fault { addr; access; reason = Unmapped });
  if not (Prot.allows prot access) then
    raise (Fault { addr; access; reason = Protection });
  (seg, off)

(* The mapping geometry behind a (validated) 4-byte exec access at
   [addr]: [(seg, delta, hi)] with [delta = off - addr].  The CPU's
   decode cache pins these per page. *)
let exec_view t addr =
  let seg, off, run, prot = lookup t addr Prot.Exec in
  if 4 > run then raise (Fault { addr; access = Prot.Exec; reason = Unmapped });
  if not (Prot.allows prot Prot.Exec) then
    raise (Fault { addr; access = Prot.Exec; reason = Protection });
  (seg, off - addr, addr + run)

(* Like [exec_view] but for data accesses and non-raising: the mapping
   geometry behind [addr] when its *effective* protection (so never a
   COW mapping, for writes) allows [access], else [None].  Goes straight
   to the interval map — no TLB fill, no stats — because it only runs on
   the trace JIT's inline-cache miss path, after the authoritative
   access already succeeded. *)
let data_view t addr access =
  match Interval_map.find addr t.table with
  | None -> None
  | Some (lo, hi, m) ->
    if Prot.allows (effective m) access then Some (m.seg, m.seg_off - lo, hi)
    else None

(* Single-access entry points.  Each checks the TLB inline and, on a
   full hit (right page, in bounds, access allowed), goes straight to
   the segment — no intermediate tuples on the hot path.  Everything
   else (miss, fault, caching off) falls back to [translate], which
   re-resolves and raises the precise fault. *)

let load_u8 t addr =
  let e = tlb_entry t addr in
  match e.te_seg with
  | Some seg
    when t.caching
         && e.te_page = Layout.page_down addr
         && addr < e.te_hi
         && e.te_mask land 1 <> 0 ->
    (Stats.cur ()).tlb_hits <- (Stats.cur ()).tlb_hits + 1;
    Segment.get_u8 seg (addr + e.te_delta)
  | _ ->
    let seg, off = translate t addr Prot.Read 1 in
    Segment.get_u8 seg off

let load_u32 t addr =
  let e = tlb_entry t addr in
  match e.te_seg with
  | Some seg
    when t.caching
         && e.te_page = Layout.page_down addr
         && addr + 4 <= e.te_hi
         && e.te_mask land 1 <> 0 ->
    (Stats.cur ()).tlb_hits <- (Stats.cur ()).tlb_hits + 1;
    Segment.get_u32 seg (addr + e.te_delta)
  | _ ->
    let seg, off = translate t addr Prot.Read 4 in
    Segment.get_u32 seg off

let store_u8 t addr v =
  let e = tlb_entry t addr in
  match e.te_seg with
  | Some seg
    when t.caching
         && e.te_page = Layout.page_down addr
         && addr < e.te_hi
         && e.te_mask land 2 <> 0 ->
    (Stats.cur ()).tlb_hits <- (Stats.cur ()).tlb_hits + 1;
    Segment.set_u8 seg (addr + e.te_delta) v
  | _ ->
    let seg, off = translate t addr Prot.Write 1 in
    Segment.set_u8 seg off v

let store_u32 t addr v =
  let e = tlb_entry t addr in
  match e.te_seg with
  | Some seg
    when t.caching
         && e.te_page = Layout.page_down addr
         && addr + 4 <= e.te_hi
         && e.te_mask land 2 <> 0 ->
    (Stats.cur ()).tlb_hits <- (Stats.cur ()).tlb_hits + 1;
    Segment.set_u32 seg (addr + e.te_delta) v
  | _ ->
    let seg, off = translate t addr Prot.Write 4 in
    Segment.set_u32 seg off v

let fetch t addr =
  let e = tlb_entry t addr in
  match e.te_seg with
  | Some seg
    when t.caching
         && e.te_page = Layout.page_down addr
         && addr + 4 <= e.te_hi
         && e.te_mask land 4 <> 0 ->
    (Stats.cur ()).tlb_hits <- (Stats.cur ()).tlb_hits + 1;
    Segment.get_u32 seg (addr + e.te_delta)
  | _ ->
    let seg, off = translate t addr Prot.Exec 4 in
    Segment.get_u32 seg off

(* --- Bulk fast paths ------------------------------------------------

   The byte-at-a-time loops translated every single byte.  These
   translate once per mapping run and blit within the segment.  The
   observable behaviour — partial effects before a fault, fault
   addresses, and the [Invalid_argument] raised when a run crosses the
   backing segment's [max_size] — matches the byte loops exactly: runs
   are clamped to segment capacity, and a zero-capacity run performs a
   single byte access to raise the identical exception. *)

(* Returns the usable run length at [addr] for [access] ([>= 1]), after
   the same bounds-then-protection checks a 1-byte [translate] does.

   Pager interaction: bulk spans self-serve their pager faults — the
   syscall layer never delivered per-page faults for these, and routing
   [Not_resident] out to the kernel here would restart the whole copy
   per page (or exhaust the bounded ISA retry fuel on spans longer than
   it).  The first page is materialised directly if needed; the run is
   then clamped to the resident prefix, so each following page is
   materialised by its own [bulk_run] call — a single forward pass even
   when the span exceeds the RAM budget and early pages are evicted
   while later ones fault in. *)
let bulk_run t addr access ~want =
  let seg, off, run, prot =
    try lookup t addr access
    with Fault { reason = Not_resident; _ } ->
      (match Interval_map.find addr t.table with
      | Some (lo, _, m) ->
        let p = addr lsr Layout.page_shift in
        Range_lock.with_range t.rlock ~lo:p ~hi:(p + 1) Range_lock.Exclusive
          (fun () ->
            Vm_object.materialise m.obj
              (m.seg_off + (addr - lo))
              ~write:(access = Prot.Write))
      | None -> ());
      lookup t addr access
  in
  if not (Prot.allows prot access) then
    raise (Fault { addr; access; reason = Protection });
  let cap = Segment.max_size seg - off in
  if cap <= 0 then begin
    (* Out of backing capacity: raise the same [Invalid_argument] the
       equivalent single-byte access would. *)
    (match access with
    | Prot.Write -> Segment.set_u8 seg off 0
    | Prot.Read | Prot.Exec -> ignore (Segment.get_u8 seg off));
    assert false
  end;
  let n = min want (min run cap) in
  let n =
    match Interval_map.find addr t.table with
    | Some (lo, _, m) when Vm_object.pageable m.obj ->
      let moff = m.seg_off + (addr - lo) in
      let first = Layout.page_size - (addr land (Layout.page_size - 1)) in
      let rec resident_prefix k =
        if k >= n then n
        else if Vm_object.resident m.obj (moff + k) then begin
          Vm_object.touch m.obj (moff + k) ~write:(access = Prot.Write);
          resident_prefix (k + Layout.page_size)
        end
        else k
      in
      resident_prefix first
    | Some _ | None -> n
  in
  (seg, off, n)

let read_bytes t addr len =
  let out = Bytes.make len '\000' in
  let i = ref 0 in
  while !i < len do
    let seg, off, n = bulk_run t (addr + !i) Prot.Read ~want:(len - !i) in
    Segment.read_into seg ~src_off:off out ~dst_off:!i ~len:n;
    i := !i + n
  done;
  out

let write_bytes t addr b =
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    let seg, off, n = bulk_run t (addr + !i) Prot.Write ~want:(len - !i) in
    Segment.write_from seg ~dst_off:off b ~src_off:!i ~len:n;
    i := !i + n
  done

let read_cstring t addr =
  let limit = 0x1_0000 in
  let buf = Buffer.create 32 in
  let chunk = Bytes.create 256 in
  let rec go i =
    if i >= limit then raise (Cstring_unterminated addr);
    let seg, off, n =
      bulk_run t (addr + i) Prot.Read ~want:(min 256 (limit - i))
    in
    Segment.read_into seg ~src_off:off chunk ~dst_off:0 ~len:n;
    match Bytes.index_from_opt chunk 0 '\000' with
    | Some j when j < n ->
      Buffer.add_subbytes buf chunk 0 j;
      Buffer.contents buf
    | Some _ | None ->
      Buffer.add_subbytes buf chunk 0 n;
      go (i + n)
  in
  go 0

let rebuild f table =
  Interval_map.fold
    (fun lo hi m acc -> Interval_map.add ~lo ~hi (f m) acc)
    table Interval_map.empty

let clone t =
  let cow = !Segment.cow_enabled in
  let child =
    {
      table = Interval_map.empty;
      tlb = fresh_tlb ();
      epoch = 0;
      caching = t.caching;
      uid = Atomic.fetch_and_add next_uid 1 + 1;
      rlock = Range_lock.create ();
      tlock = Mutex.create ();
    }
  in
  (* Flag a private mapping COW when its logical protection permits
     writes — those are the mappings whose next store must trap so the
     kernel can break the sharing.  Read-only/no-access mappings keep
     their refcount-shared pages without a flag: if a later [protect]
     opens them up, writes still diverge correctly at the segment layer
     (the pages are shared), just without a fault. *)
  let mark m =
    if cow && m.share = Private && Prot.allows m.prot Prot.Write then
      { m with cow = true }
    else m
  in
  let clone_mapping m =
    match m.share with
    | Public ->
      (* Shared object, shared residency: the child sees the same page
         cache. *)
      Vm_object.attach m.obj ~uid:child.uid (fun () -> invalidate child);
      m
    | Private ->
      let seg = Segment.copy m.seg in
      if not cow then
        (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Segment.size seg;
      (* A fresh segment gets a fresh object; the copy has no backing
         file of its own, so a pageable parent yields an [Anonymous]
         child (its pages fault in as minor faults — fork is itself
         demand-paged), while a pinned parent stays pinned. *)
      let kind =
        if Vm_object.is_pinned m.obj then Vm_object.Pinned else Vm_object.Anonymous
      in
      let obj = Vm_object.get_or_create seg kind in
      Vm_object.attach obj ~uid:child.uid (fun () -> invalidate child);
      mark { m with seg; obj }
  in
  (* whole-space hold on the parent: no fault may resolve while its
     pages flip from owned to shared (the child is private until
     returned, so its locks are never contended here) *)
  Range_lock.with_range t.rlock ~lo:whole_lo ~hi:whole_hi Range_lock.Exclusive
    (fun () ->
      child.table <- rebuild clone_mapping t.table;
      if cow then begin
        (* The parent's private pages are now shared with the child:
           strip its effective write permission too, and flush its
           TLB. *)
        swap_table t (rebuild mark);
        invalidate t
      end);
  child

(* Kernel-side resolution of a [Not_resident] fault: if [addr] lies in
   a pageable mapping, materialise the page (evicting under a full RAM
   budget) and let the caller retry the access.  Returns false when the
   fault cannot be a pager fault — unmapped, or a pinned object — so
   the caller falls through to COW/SIGSEGV handling. *)
let resolve_pager t addr access =
  match Interval_map.find addr t.table with
  | Some (lo, _, m) when Vm_object.pageable m.obj ->
    let p = addr lsr Layout.page_shift in
    Range_lock.with_range t.rlock ~lo:p ~hi:(p + 1) Range_lock.Exclusive (fun () ->
        Vm_object.materialise m.obj
          (m.seg_off + (addr - lo))
          ~write:(access = Prot.Write));
    true
  | Some _ | None -> false

(* Kernel-side resolution of a COW write fault: if [addr] lies in a COW
   mapping whose logical protection allows the write, clear the flag
   (restoring the original protection), bump the epoch so every cached
   translation and decode is refetched, and let the caller retry the
   access.  The retried store diverges pages at the segment layer —
   copying each written page at most once, and not at all when the
   write is identical to the shared bytes.  Returns false for genuine
   protection faults, which the caller must deliver as SIGSEGV. *)
let resolve_cow t addr =
  match Interval_map.find addr t.table with
  | Some (mlo, mhi, m) when m.cow && Prot.allows m.prot Prot.Write ->
    let lo, hi = page_range ~base:mlo ~len:(mhi - mlo) in
    Range_lock.with_range t.rlock ~lo ~hi Range_lock.Exclusive (fun () ->
        swap_table t (Interval_map.update addr (fun m -> { m with cow = false }));
        invalidate t;
        (Stats.cur ()).cow_faults <- (Stats.cur ()).cow_faults + 1);
    true
  | Some _ | None -> false

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (lo, hi, m) ->
      Format.fprintf ppf "%a-%a %a %s %-8s %s@,"
        Layout.pp_addr lo Layout.pp_addr hi Prot.pp m.prot
        (match m.share with Private -> "priv" | Public -> "pub ")
        (Layout.region_name lo) m.label)
    (mappings t);
  Format.fprintf ppf "@]"

module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault

(* --- VmObjects: residency and backing identity ------------------------

   A VmObject sits between a mapping and its [Segment]: the segment is
   the page {e store} (contents, refcounts, COW breaks), the object owns
   the pager state — which pages are resident, referenced and dirty,
   and what kind of backing materialises them.  All mappings of one
   segment share one object (page-cache semantics: a page faulted in
   through any space is resident for every space), so the registry is
   keyed by segment id.

   Residency is pure accounting.  Eviction never discards contents —
   the segment keeps them, standing in for the backing store — it
   clears the residency bit, pushes a dirty file-backed page through
   the owning file system's journalled writeback barrier, and bumps the
   epoch of every attached address space so TLBs, decode caches and
   compiled traces refetch through the slow path (which is where the
   next touch faults).  A missed residency check can therefore skew the
   observability counters but can never corrupt data. *)

type kind =
  | Anonymous  (** no backing identity: stacks, heaps, private images *)
  | Pinned  (** always resident; never faults, never evicted *)
  | File_backed of { path : string; writeback : page:int -> unit }
      (** backed by a shared-partition file; [writeback] is the owning
          file system's journalled durability barrier for one page *)

type t = {
  obj_seg : Segment.t;
  mutable obj_kind : kind;
  resident : Bytes.t;  (* 1 bit per page of the segment's max_size *)
  refbit : Bytes.t;  (* clock reference bits *)
  dirty : Bytes.t;  (* written since materialise/last writeback *)
  spaces : (int, int ref * (unit -> unit)) Hashtbl.t;
      (* attached address spaces: uid -> (mapping count, epoch bump) *)
  mutable frames : int;  (* resident pageable pages of this object *)
}

(* HEMLOCK_NO_PAGER restores the seed's eager behaviour: every page of
   every mapping is considered resident, nothing faults, nothing is
   evicted.  The simulated cost model is byte-identical either way. *)
let enabled = ref (Sys.getenv_opt "HEMLOCK_NO_PAGER" = None)

(* Simulated-RAM budget in pages ([None] = unbounded).  The clamp keeps
   the clock from thrashing the handful of pages a single instruction
   needs live (fetch page + up to two data pages + retry slack). *)
let min_ram_pages = 8

let ram_pages =
  ref
    (match Sys.getenv_opt "HEMLOCK_RAM_PAGES" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> Some n | Some _ | None -> None)
    | None -> None)

let budget () = Option.map (max min_ram_pages) !ram_pages

(* --- bitmaps --------------------------------------------------------- *)

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_clear b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.chr (Char.code (Bytes.unsafe_get b (i lsr 3)) land lnot (1 lsl (i land 7))))

let npages seg = (Segment.max_size seg + Layout.page_size - 1) lsr Layout.page_shift

(* --- registry -------------------------------------------------------- *)

(* Objects are never removed when a segment dies (the simulator has no
   segment destructor — the same deliberate rule as page refcounts not
   being released on exit); [forget] exists for teardown paths that
   know the segment is done for, and stale entries cost a hashtable
   slot plus, at worst, a clean eviction of their leftover frames.

   The registry and the clock below are {e per-domain} (a DLS-keyed
   record): each domain owns an independent page cache and
   second-chance hand, the simulator's analogue of per-CPU page-frame
   pools.  Residency is pure accounting (eviction never discards
   contents), so domains disagreeing about which pages are "in RAM" can
   skew observability counters but never data.  The main domain's
   instance is the instance the seed had, so single-domain runs are
   bit-for-bit unchanged. *)
type state = {
  registry : (int, t) Hashtbl.t;
  (* Fixed circular frame table (one slot per page of simulated RAM)
     with a second-chance hand, lazily sized from [budget ()].
     Unbounded mode keeps no table: pages stay resident forever. *)
  mutable table : (t * int) option array;
  mutable used : int;
  mutable hand : int;
  mutable peak : int;
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { registry = Hashtbl.create 64; table = [||]; used = 0; hand = 0; peak = 0 })

let st () = Domain.DLS.get state_key

(* --- the clock ------------------------------------------------------- *)

let gauge delta =
  let s = st () and c = Stats.cur () in
  c.resident_pages <- c.resident_pages + delta;
  if c.resident_pages > s.peak then s.peak <- c.resident_pages

let peak_resident () = (st ()).peak

let reset () =
  let s = st () in
  Hashtbl.reset s.registry;
  s.table <- [||];
  s.used <- 0;
  s.hand <- 0;
  s.peak <- 0;
  (Stats.cur ()).resident_pages <- 0

let is_pinned t =
  match t.obj_kind with Pinned -> true | Anonymous | File_backed _ -> false

let pageable t = !enabled && not (is_pinned t)

let resident t off =
  (not (pageable t))
  ||
  let i = off lsr Layout.page_shift in
  i lsr 3 >= Bytes.length t.resident || bit_get t.resident i

let touch t off ~write =
  if pageable t then begin
    let i = off lsr Layout.page_shift in
    if i lsr 3 < Bytes.length t.resident then begin
      bit_set t.refbit i;
      if write then bit_set t.dirty i
    end
  end

(* Reclaim the frame in [slot].  A dirty file-backed page first goes
   through the journalled writeback barrier; a transient injected
   failure there aborts the eviction (the page simply stays resident
   and the hand moves on), while a [Fault.Crash] propagates — the
   machine stopped mid-writeback, and the journal entry is the
   evidence fsck recovers from. *)
let try_evict slot =
  let s = st () in
  match s.table.(slot) with
  | None -> true
  | Some (o, p) -> (
    let write_back () =
      if bit_get o.dirty p then
        match o.obj_kind with
        | File_backed { writeback; _ } ->
          writeback ~page:p;
          (Stats.cur ()).pages_written_back <- (Stats.cur ()).pages_written_back + 1
        | Anonymous | Pinned -> ()
    in
    match write_back () with
    | () ->
      bit_clear o.dirty p;
      bit_clear o.refbit p;
      bit_clear o.resident p;
      o.frames <- o.frames - 1;
      s.table.(slot) <- None;
      s.used <- s.used - 1;
      (Stats.cur ()).pages_evicted <- (Stats.cur ()).pages_evicted + 1;
      gauge (-1);
      Hashtbl.iter (fun _ (_, invalidate) -> invalidate ()) o.spaces;
      true
    | exception Fault.Injected _ -> false)

let place_frame t i =
  match budget () with
  | None -> ()
  | Some n ->
    let s = st () in
    if Array.length s.table <> n then begin
      (* budget changed since the last placement: start a fresh clock
         (callers change HEMLOCK_RAM_PAGES only around [reset ()]) *)
      s.table <- Array.make n None;
      s.used <- 0;
      s.hand <- 0
    end;
    if s.used >= n then begin
      (* second chance: clear reference bits until an unreferenced,
         evictable victim turns up; two full sweeps with no victim
         means everything is both hot and unevictable, and the table
         briefly overcommits rather than deadlocks *)
      let victim = ref None in
      let steps = ref 0 in
      while !victim = None && !steps < 2 * n do
        (match s.table.(s.hand) with
        | None -> victim := Some s.hand
        | Some (o, p) ->
          if bit_get o.refbit p then bit_clear o.refbit p
          else if try_evict s.hand then victim := Some s.hand);
        if !victim = None then s.hand <- (s.hand + 1) mod n;
        incr steps
      done;
      match !victim with
      | Some slot ->
        s.table.(slot) <- Some (t, i);
        s.used <- s.used + 1;
        s.hand <- (slot + 1) mod n
      | None -> ()
    end
    else begin
      (* free slot: first fit from the hand, wrapping *)
      let slot = ref s.hand in
      while s.table.(!slot) <> None do
        slot := (!slot + 1) mod n
      done;
      s.table.(!slot) <- Some (t, i);
      s.used <- s.used + 1
    end

let materialise t off ~write =
  if pageable t then begin
    let i = off lsr Layout.page_shift in
    if i lsr 3 < Bytes.length t.resident then
      if bit_get t.resident i then touch t off ~write
      else begin
        (* Major = the backing file already holds content for this page
           (a simulated device read); minor = zero-fill or an in-memory
           anonymous page.  Neither is billed: like COW faults they are
           kernel-internal, consume no fuel and never reach [faults]. *)
        (match t.obj_kind with
        | File_backed _ when Segment.page_view t.obj_seg (i lsl Layout.page_shift) <> None
          ->
          (Stats.cur ()).major_faults <- (Stats.cur ()).major_faults + 1
        | _ -> (Stats.cur ()).minor_faults <- (Stats.cur ()).minor_faults + 1);
        bit_set t.resident i;
        bit_set t.refbit i;
        if write then bit_set t.dirty i;
        t.frames <- t.frames + 1;
        gauge 1;
        place_frame t i
      end
  end

(* Pin an object in place: raw mappers (tests, examples, libraries that
   access segments without a kernel to resolve faults) must see the
   seed's eager behaviour even when the segment was first mapped
   pageable.  Its frames leave the clock without being counted as
   evictions. *)
let pin t =
  if not (is_pinned t) then begin
    t.obj_kind <- Pinned;
    let s = st () in
    Array.iteri
      (fun slot -> function
        | Some (o, _) when o == t ->
          s.table.(slot) <- None;
          s.used <- s.used - 1
        | Some _ | None -> ())
      s.table;
    gauge (-t.frames);
    t.frames <- 0
  end

let get_or_create seg kind =
  match Hashtbl.find_opt (st ()).registry (Segment.id seg) with
  | Some t ->
    (match kind with Pinned -> pin t | Anonymous | File_backed _ -> ());
    t
  | None ->
    let bytes = (npages seg + 7) lsr 3 in
    let t =
      {
        obj_seg = seg;
        obj_kind = kind;
        resident = Bytes.make bytes '\000';
        refbit = Bytes.make bytes '\000';
        dirty = Bytes.make bytes '\000';
        spaces = Hashtbl.create 4;
        frames = 0;
      }
    in
    Hashtbl.replace (st ()).registry (Segment.id seg) t;
    t

let forget seg =
  let s = st () in
  match Hashtbl.find_opt s.registry (Segment.id seg) with
  | None -> ()
  | Some t ->
    Array.iteri
      (fun slot -> function
        | Some (o, _) when o == t ->
          s.table.(slot) <- None;
          s.used <- s.used - 1
        | Some _ | None -> ())
      s.table;
    gauge (-t.frames);
    t.frames <- 0;
    Bytes.fill t.resident 0 (Bytes.length t.resident) '\000';
    Hashtbl.remove s.registry (Segment.id seg)

let attach t ~uid invalidate =
  match Hashtbl.find_opt t.spaces uid with
  | Some (n, _) -> incr n
  | None -> Hashtbl.replace t.spaces uid (ref 1, invalidate)

let detach t ~uid =
  match Hashtbl.find_opt t.spaces uid with
  | Some (n, _) ->
    decr n;
    if !n <= 0 then Hashtbl.remove t.spaces uid
  | None -> ()

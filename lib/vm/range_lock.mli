(** Interval-keyed reader/writer locks over page ranges.

    One value guards one address space.  Holds cover half-open page
    ranges [\[lo, hi)]; two holds conflict when the ranges overlap and
    at least one is [Exclusive].  Disjoint ranges never block each
    other, so concurrent faults, maps and pager materialisations on
    different parts of a shared space proceed without contention.

    {b Contract:} one held range per thread of control — never acquire
    a second range on the same lock while holding one.  Under that
    contract a waiting thread holds nothing, so no wait cycle (and no
    deadlock) can form; the lock needs no ordering discipline beyond
    it.

    {b Kill switch:} with [HEMLOCK_NO_RANGELOCK] set (non-empty,
    non-["0"]) at startup, every acquisition becomes an exclusive
    whole-space hold — the lock degenerates to one mutex per space.
    The observable semantics are identical, only concurrency is lost;
    use it to bisect suspected range-granularity bugs. *)

type mode = Shared | Exclusive

type t

val create : unit -> t

(** Block until no conflicting hold remains, then record the hold.
    Writers can starve under a continuous stream of overlapping
    readers; the simulator's regions are short enough not to care.
    @raise Invalid_argument if [hi <= lo]. *)
val acquire : t -> lo:int -> hi:int -> mode -> unit

(** Drop one hold with exactly this range and wake all waiters.
    @raise Invalid_argument if no such hold exists. *)
val release : t -> lo:int -> hi:int -> unit

(** [with_range t ~lo ~hi mode f]: acquire, run [f], always release. *)
val with_range : t -> lo:int -> hi:int -> mode -> (unit -> 'a) -> 'a

(** Snapshot of current holds as [(lo, hi, mode)], sorted by [lo] —
    for tests.  Under the kill switch, holds read back as
    [Exclusive]. *)
val held : t -> (int * int * mode) list

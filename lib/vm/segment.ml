module Codec = Hemlock_util.Codec

type t = {
  id : int;
  name : string;
  max_size : int;
  mutable data : Bytes.t; (* capacity; logical size tracked separately *)
  mutable size : int;
  mutable version : int; (* bumped by every content write; see [version] *)
}

let next_id = ref 0

let create ~name ~max_size () =
  if max_size <= 0 then invalid_arg "Segment.create: max_size <= 0";
  incr next_id;
  { id = !next_id; name; max_size; data = Bytes.empty; size = 0; version = 0 }

let id t = t.id
let name t = t.name
let max_size t = t.max_size
let size t = t.size
let version t = t.version

let check_off t off len =
  if off < 0 || off + len > t.max_size then
    invalid_arg
      (Printf.sprintf "Segment %s: offset %d+%d out of bounds (max %d)" t.name off
         len t.max_size)

let ensure_capacity t n =
  if Bytes.length t.data < n then begin
    let cap = max 256 (max n (2 * Bytes.length t.data)) in
    let cap = min cap t.max_size in
    let data = Bytes.make cap '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data
  end

let resize t n =
  if n < 0 || n > t.max_size then invalid_arg "Segment.resize: bad size";
  if n < t.size then
    (* Clear the dropped suffix so re-growth reads zeroes. *)
    Bytes.fill t.data n (Bytes.length t.data - n) '\000'
  else ensure_capacity t n;
  t.size <- n;
  t.version <- t.version + 1

let get_u8 t off =
  check_off t off 1;
  if off >= Bytes.length t.data then 0 else Codec.get_u8 t.data off

let set_u8 t off v =
  check_off t off 1;
  ensure_capacity t (off + 1);
  Codec.set_u8 t.data off v;
  t.version <- t.version + 1;
  if off + 1 > t.size then t.size <- off + 1

let get_u32 t off =
  check_off t off 4;
  if off + 4 <= Bytes.length t.data then Codec.get_u32 t.data off
  else
    get_u8 t off
    lor (get_u8 t (off + 1) lsl 8)
    lor (get_u8 t (off + 2) lsl 16)
    lor (get_u8 t (off + 3) lsl 24)

let set_u32 t off v =
  check_off t off 4;
  ensure_capacity t (off + 4);
  Codec.set_u32 t.data off v;
  t.version <- t.version + 1;
  if off + 4 > t.size then t.size <- off + 4

let blit_in t ~dst_off src =
  let len = Bytes.length src in
  if len > 0 then begin
    check_off t dst_off len;
    ensure_capacity t (dst_off + len);
    Bytes.blit src 0 t.data dst_off len;
    t.version <- t.version + 1;
    if dst_off + len > t.size then t.size <- dst_off + len
  end

let blit_out t ~src_off ~len =
  check_off t src_off len;
  let out = Bytes.make len '\000' in
  let avail = min len (max 0 (Bytes.length t.data - src_off)) in
  if avail > 0 then Bytes.blit t.data src_off out 0 avail;
  out

let read_into t ~src_off dst ~dst_off ~len =
  if len > 0 then begin
    check_off t src_off len;
    let avail = min len (max 0 (Bytes.length t.data - src_off)) in
    if avail > 0 then Bytes.blit t.data src_off dst dst_off avail;
    if avail < len then Bytes.fill dst (dst_off + avail) (len - avail) '\000'
  end

let write_from t ~dst_off src ~src_off ~len =
  if len > 0 then begin
    check_off t dst_off len;
    ensure_capacity t (dst_off + len);
    Bytes.blit src src_off t.data dst_off len;
    t.version <- t.version + 1;
    if dst_off + len > t.size then t.size <- dst_off + len
  end

let replace t b =
  let len = Bytes.length b in
  if len > t.max_size then invalid_arg "Segment.replace: larger than max_size";
  ensure_capacity t len;
  Bytes.blit b 0 t.data 0 len;
  if Bytes.length t.data > len then
    Bytes.fill t.data len (Bytes.length t.data - len) '\000';
  t.size <- len;
  t.version <- t.version + 1

let contents t = blit_out t ~src_off:0 ~len:t.size

let copy t =
  incr next_id;
  { t with id = !next_id; data = Bytes.copy t.data }

let pp ppf t = Format.fprintf ppf "segment#%d(%s, %d/%d bytes)" t.id t.name t.size t.max_size

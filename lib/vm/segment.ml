module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

(* --- Page-chunked, refcounted storage --------------------------------

   Contents live in 4 KiB pages ([Layout.page_size]) behind per-page
   reference counts.  A slot of [None] is the zero page: never
   allocated, reads as zeroes.  [copy] in COW mode bumps every
   allocated page's refcount and shares it; the first {e diverging}
   write through either side copies just that page ([writable_page]).
   A write that stores exactly the bytes already present on a shared
   page is skipped outright — no copy, no version bump — so processes
   replaying identical initialisation (relocation patching of a module
   placed at the same base, an exec'd image writing its startup
   globals) keep sharing every byte.

   Refcounts are released when a page is dropped by [resize]/[replace].
   There is deliberately no release on process exit: tying refcounts to
   OCaml finalisation would make [pages_copied] depend on the host GC.
   The cost of the leak is bounded — an unreleased count only means a
   later write copies a page it could have reclaimed.

   Concurrency: refcounts and the id allocator are atomics, so sharing
   and COW breaks are safe when domains touch a segment through
   disjoint page ranges (the address-space range locks guarantee
   exactly that).  [version] and [page_gen] stay plain ints on purpose:
   a cross-domain writer's bump may be observed late by another
   domain's cached decode/TLB state, which is the simulator's analogue
   of real SMP instruction-cache incoherence — the owning domain always
   sees its own bumps, and the range locks order any write that could
   change bytes another domain is about to run. *)

type page = { pbytes : Bytes.t; prc : int Atomic.t }

type t = {
  id : int;
  name : string;
  max_size : int;
  mutable pages : page option array;
  mutable size : int;
  mutable version : int; (* bumped by every content write; see [version] *)
  mutable page_gen : int;
      (* bumped whenever a slot of [pages] changes identity (COW break,
         zero-fill allocation, drop, replace) — never by in-place byte
         writes; see [page_gen]/[page_view] *)
}

(* HEMLOCK_NO_COW restores eager deep copies (and, with them, the
   seed's exact billing of fork into [bytes_copied]) for A/B in CI. *)
let cow_enabled = ref (Sys.getenv_opt "HEMLOCK_NO_COW" = None)

let next_id = Atomic.make 0

let npages max_size = (max_size + Layout.page_size - 1) lsr Layout.page_shift

let create ~name ~max_size () =
  if max_size <= 0 then invalid_arg "Segment.create: max_size <= 0";
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    name;
    max_size;
    pages = Array.make (npages max_size) None;
    size = 0;
    version = 0;
    page_gen = 0;
  }

let id t = t.id
let name t = t.name
let max_size t = t.max_size
let size t = t.size
let version t = t.version
let page_gen t = t.page_gen

let page_view t off =
  if off < 0 || off >= t.max_size then None
  else
    match t.pages.(off lsr Layout.page_shift) with
    | Some p -> Some (p.pbytes, t.page_gen)
    | None -> None

(* Like [page_view], but only for pages that are exclusively owned
   (refcount 1), so the caller may write through the bytes directly.
   Soundness rests on [page_gen] being bumped by everything that could
   turn the view stale: page identity changes, [copy] sharing the pages
   out, and [resize] shrinking the logical size. *)
let owned_page_view t off =
  if off < 0 || off >= t.max_size then None
  else
    match t.pages.(off lsr Layout.page_shift) with
    | Some p when Atomic.get p.prc = 1 -> Some (p.pbytes, t.page_gen)
    | Some _ | None -> None

let bump_version t = t.version <- t.version + 1

let allocated_pages t =
  Array.fold_left (fun n p -> if p = None then n else n + 1) 0 t.pages

let shared_pages t =
  Array.fold_left
    (fun n -> function Some p when Atomic.get p.prc > 1 -> n + 1 | Some _ | None -> n)
    0 t.pages

let check_off t off len =
  if off < 0 || off + len > t.max_size then
    invalid_arg
      (Printf.sprintf "Segment %s: offset %d+%d out of bounds (max %d)" t.name off
         len t.max_size)

let page_index off = off lsr Layout.page_shift
let page_off off = off land (Layout.page_size - 1)

let alloc_page () = { pbytes = Bytes.make Layout.page_size '\000'; prc = Atomic.make 1 }

(* The page containing [off], made safe to mutate: a zero page is
   allocated, a shared page is copied (the COW break — the only place a
   page is ever physically duplicated). *)
let writable_page t off =
  let i = page_index off in
  match Array.unsafe_get t.pages i with
  | Some p when Atomic.get p.prc = 1 -> p
  | Some p ->
    Atomic.decr p.prc;
    let q = { pbytes = Bytes.copy p.pbytes; prc = Atomic.make 1 } in
    (Stats.cur ()).pages_copied <- (Stats.cur ()).pages_copied + 1;
    Array.unsafe_set t.pages i (Some q);
    t.page_gen <- t.page_gen + 1;
    q
  | None ->
    let q = alloc_page () in
    Array.unsafe_set t.pages i (Some q);
    t.page_gen <- t.page_gen + 1;
    q

let drop_page t i =
  match t.pages.(i) with
  | None -> ()
  | Some p ->
    Atomic.decr p.prc;
    t.pages.(i) <- None;
    t.page_gen <- t.page_gen + 1

let resize t n =
  if n < 0 || n > t.max_size then invalid_arg "Segment.resize: bad size";
  if n < t.size then begin
    (* Clear the dropped suffix so re-growth reads zeroes: whole pages
       beyond [n] are released, the boundary page's tail is zeroed. *)
    for i = page_index (n + Layout.page_size - 1) to Array.length t.pages - 1 do
      drop_page t i
    done;
    if page_off n <> 0 then begin
      match t.pages.(page_index n) with
      | None -> ()
      | Some _ ->
        let p = writable_page t n in
        Bytes.fill p.pbytes (page_off n) (Layout.page_size - page_off n) '\000'
    end
  end;
  t.size <- n;
  t.version <- t.version + 1;
  (* Invalidate raw page views: a shrink lowers the write limit an
     [owned_page_view] holder derived from [size]. *)
  t.page_gen <- t.page_gen + 1

let get_u8 t off =
  check_off t off 1;
  match Array.unsafe_get t.pages (page_index off) with
  | None -> 0
  | Some p -> Codec.get_u8 p.pbytes (page_off off)

let set_u8 t off v =
  check_off t off 1;
  (match Array.unsafe_get t.pages (page_index off) with
  | Some p when Atomic.get p.prc = 1 ->
    (* Exclusively owned page: write in place, no COW machinery. *)
    Codec.set_u8 p.pbytes (page_off off) v;
    t.version <- t.version + 1
  | Some p when off < t.size && Codec.get_u8 p.pbytes (page_off off) = v land 0xFF
    ->
    (* Identical write to a shared page: keep sharing it. *)
    ()
  | _ ->
    let p = writable_page t off in
    Codec.set_u8 p.pbytes (page_off off) v;
    t.version <- t.version + 1);
  if off + 1 > t.size then t.size <- off + 1

let get_u32 t off =
  check_off t off 4;
  if page_off off <= Layout.page_size - 4 then
    match Array.unsafe_get t.pages (page_index off) with
    | None -> 0
    | Some p -> Codec.get_u32 p.pbytes (page_off off)
  else
    get_u8 t off
    lor (get_u8 t (off + 1) lsl 8)
    lor (get_u8 t (off + 2) lsl 16)
    lor (get_u8 t (off + 3) lsl 24)

let set_u32 t off v =
  check_off t off 4;
  if page_off off <= Layout.page_size - 4 then begin
    (match Array.unsafe_get t.pages (page_index off) with
    | Some p when Atomic.get p.prc = 1 ->
      Codec.set_u32 p.pbytes (page_off off) v;
      t.version <- t.version + 1
    | Some p
      when off + 4 <= t.size
           && Codec.get_u32 p.pbytes (page_off off) = Codec.mask32 v -> ()
    | _ ->
      let p = writable_page t off in
      Codec.set_u32 p.pbytes (page_off off) v;
      t.version <- t.version + 1);
    if off + 4 > t.size then t.size <- off + 4
  end
  else
    for k = 0 to 3 do
      set_u8 t (off + k) ((v lsr (8 * k)) land 0xFF)
    done

let sub_equal a ao b bo n =
  let rec go i =
    i >= n || (Bytes.unsafe_get a (ao + i) = Bytes.unsafe_get b (bo + i) && go (i + 1))
  in
  go 0

let write_from t ~dst_off src ~src_off ~len =
  if len > 0 then begin
    check_off t dst_off len;
    let i = ref 0 in
    while !i < len do
      let off = dst_off + !i in
      let po = page_off off in
      let n = min (len - !i) (Layout.page_size - po) in
      (match Array.unsafe_get t.pages (page_index off) with
      | Some p
        when Atomic.get p.prc > 1
             && off + n <= t.size
             && sub_equal p.pbytes po src (src_off + !i) n -> ()
      | _ ->
        let p = writable_page t off in
        Bytes.blit src (src_off + !i) p.pbytes po n;
        t.version <- t.version + 1);
      i := !i + n
    done;
    if dst_off + len > t.size then t.size <- dst_off + len
  end

let blit_in t ~dst_off src = write_from t ~dst_off src ~src_off:0 ~len:(Bytes.length src)

let read_into t ~src_off dst ~dst_off ~len =
  if len > 0 then begin
    check_off t src_off len;
    let i = ref 0 in
    while !i < len do
      let off = src_off + !i in
      let po = page_off off in
      let n = min (len - !i) (Layout.page_size - po) in
      (match Array.unsafe_get t.pages (page_index off) with
      | None -> Bytes.fill dst (dst_off + !i) n '\000'
      | Some p -> Bytes.blit p.pbytes po dst (dst_off + !i) n);
      i := !i + n
    done
  end

let blit_out t ~src_off ~len =
  let out = Bytes.make len '\000' in
  read_into t ~src_off out ~dst_off:0 ~len;
  out

let replace t b =
  let len = Bytes.length b in
  if len > t.max_size then invalid_arg "Segment.replace: larger than max_size";
  for i = 0 to Array.length t.pages - 1 do
    drop_page t i
  done;
  let i = ref 0 in
  while !i < len do
    let n = min (len - !i) Layout.page_size in
    let p = alloc_page () in
    Bytes.blit b !i p.pbytes 0 n;
    t.pages.(page_index !i) <- Some p;
    i := !i + n
  done;
  t.size <- len;
  t.version <- t.version + 1;
  t.page_gen <- t.page_gen + 1

(* Explicit-teardown refcount release.  [drop_page] decrements each
   shared page's count, so a surviving sharer whose count returns to 1
   writes in place again instead of COW-copying.  This is only called
   from deterministic teardown paths (the linker unwinding a private
   instance it just mapped, [replace]) — never from process exit or a
   finaliser, which would make [pages_copied] depend on the host GC. *)
let release t =
  for i = 0 to Array.length t.pages - 1 do
    drop_page t i
  done;
  t.size <- 0;
  t.version <- t.version + 1

let contents t = blit_out t ~src_off:0 ~len:t.size

let copy t =
  let id = Atomic.fetch_and_add next_id 1 + 1 in
  if !cow_enabled then begin
    (* O(pages): bump each allocated page's refcount and share it.  The
       saving is what an eager copy would have moved.  The source's
       pages just went from owned to shared with unchanged identity, so
       its [page_gen] must move to retire any [owned_page_view]. *)
    Array.iter (function Some p -> Atomic.incr p.prc | None -> ()) t.pages;
    (Stats.cur ()).bytes_saved <- (Stats.cur ()).bytes_saved + t.size;
    t.page_gen <- t.page_gen + 1;
    { t with id; pages = Array.copy t.pages }
  end
  else
    {
      t with
      id;
      pages =
        Array.map
          (Option.map (fun p -> { pbytes = Bytes.copy p.pbytes; prc = Atomic.make 1 }))
          t.pages;
    }

let pp ppf t = Format.fprintf ppf "segment#%d(%s, %d/%d bytes)" t.id t.name t.size t.max_size

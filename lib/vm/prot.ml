type t = No_access | Read_only | Read_write | Read_exec | Read_write_exec

type access = Read | Write | Exec

let allows prot access =
  match (prot, access) with
  | No_access, (Read | Write | Exec) -> false
  | Read_only, Read -> true
  | Read_only, (Write | Exec) -> false
  | Read_write, (Read | Write) -> true
  | Read_write, Exec -> false
  | Read_exec, (Read | Exec) -> true
  | Read_exec, Write -> false
  | Read_write_exec, (Read | Write | Exec) -> true

let strip_write = function
  | Read_write -> Read_only
  | Read_write_exec -> Read_exec
  | (No_access | Read_only | Read_exec) as p -> p

let to_string = function
  | No_access -> "---"
  | Read_only -> "r--"
  | Read_write -> "rw-"
  | Read_exec -> "r-x"
  | Read_write_exec -> "rwx"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"
  | Exec -> Format.pp_print_string ppf "exec"

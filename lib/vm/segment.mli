(** A physical memory object — what the paper (following Mach) calls a
    segment.  Segments back both mapped memory and files; a shared file
    and the memory mapped from it are the {e same} segment, which is what
    makes Hemlock's write sharing genuine rather than copy-based.

    Storage grows on demand up to [max_size] and is zero-filled. *)

type t

(** [create ~name ~max_size ()] makes an empty segment. *)
val create : name:string -> max_size:int -> unit -> t

val id : t -> int
val name : t -> string
val max_size : t -> int

(** Current logical size in bytes (high-water mark of writes/resizes). *)
val size : t -> int

(** Monotonic write counter: bumped by every content mutation
    ([set_u8]/[set_u32]/[blit_in]/[write_from]/[resize]), whichever
    component performs it.  Caches of derived data (the CPU's
    decoded-instruction cache) compare it to detect staleness without
    re-reading the bytes. *)
val version : t -> int

(** [resize t n] sets the logical size (zero-extends; truncation clears
    the dropped bytes so re-growth reads zeroes).
    @raise Invalid_argument if [n < 0] or [n > max_size t]. *)
val resize : t -> int -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit

(** [blit_in t ~dst_off src] copies [src] into the segment, growing it. *)
val blit_in : t -> dst_off:int -> Bytes.t -> unit

(** [blit_out t ~src_off ~len] copies bytes out (reads beyond [size] are
    zeroes, up to [max_size]). *)
val blit_out : t -> src_off:int -> len:int -> Bytes.t

(** [read_into t ~src_off dst ~dst_off ~len] copies [len] bytes out into
    [dst] (reads beyond [size] are zeroes, same as repeated [get_u8]). *)
val read_into : t -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> unit

(** [write_from t ~dst_off src ~src_off ~len] copies [len] bytes from
    [src] into the segment, growing it (same as repeated [set_u8]). *)
val write_from : t -> dst_off:int -> Bytes.t -> src_off:int -> len:int -> unit

(** [replace t b] swaps the whole contents for [b]: one content blit,
    one size update, one version bump.  Unlike [resize 0] + [blit_in]
    there is no intermediate state in which the segment is visibly empty
    or half-written — existing mappings observe either the old contents
    or the new.  Validation precedes any mutation.
    @raise Invalid_argument if [Bytes.length b > max_size t]. *)
val replace : t -> Bytes.t -> unit

(** [copy t] is a snapshot with identical contents and a fresh identity —
    the private half of fork. *)
val copy : t -> t

(** Whole current contents (length = [size t]). *)
val contents : t -> Bytes.t

val pp : Format.formatter -> t -> unit

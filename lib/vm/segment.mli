(** A physical memory object — what the paper (following Mach) calls a
    segment.  Segments back both mapped memory and files; a shared file
    and the memory mapped from it are the {e same} segment, which is what
    makes Hemlock's write sharing genuine rather than copy-based.

    Storage grows on demand up to [max_size] and is zero-filled.  It is
    chunked into 4 KiB pages behind per-page reference counts: {!copy}
    normally shares every page (an O(pages) refcount walk), and the
    first diverging write to a shared page copies only that page.  A
    write that would store the bytes a shared page already holds is
    skipped entirely, so identical re-initialisation (relocation
    replays, image startup writes) never breaks sharing. *)

type t

(** Copy-on-write kill switch: [false] (set the [HEMLOCK_NO_COW]
    environment variable, or flip it directly) makes {!copy} an eager
    deep copy, restoring pre-COW behaviour for A/B comparison.  The
    simulated cost model is byte-identical either way; only the
    [cow_faults]/[pages_copied]/[bytes_saved] observability counters
    and host-side work differ. *)
val cow_enabled : bool ref

(** [create ~name ~max_size ()] makes an empty segment. *)
val create : name:string -> max_size:int -> unit -> t

val id : t -> int
val name : t -> string
val max_size : t -> int

(** Current logical size in bytes (high-water mark of writes/resizes). *)
val size : t -> int

(** Monotonic write counter: bumped by every content mutation
    ([set_u8]/[set_u32]/[blit_in]/[write_from]/[resize]), whichever
    component performs it.  Caches of derived data (the CPU's
    decoded-instruction cache) compare it to detect staleness without
    re-reading the bytes. *)
val version : t -> int

(** Page-table generation: bumped whenever the {e identity} or the
    {e sharing state} of any page chunk changes — a COW break swapping
    in a private copy, a zero page being allocated by a first write,
    pages dropped by [resize]/[replace], {!copy} sharing the pages out,
    [resize] moving the logical size — and never by in-place byte
    writes.  A caller holding a raw page from {!page_view} or
    {!owned_page_view} may keep using it while this counter stands
    still; the trace JIT's inline load and store caches ride on it. *)
val page_gen : t -> int

(** [page_view t off] is the raw 4 KiB page chunk holding [off] together
    with the current {!page_gen}, or [None] if [off] is out of bounds or
    the page is an (unallocated) zero page.  The bytes are live storage:
    they must be treated as read-only, and reused only while
    [page_gen t] equals the returned stamp. *)
val page_view : t -> int -> (Bytes.t * int) option

(** [owned_page_view t off] is like {!page_view} but only for a page
    that is exclusively owned (refcount 1), which makes it legal to
    {e write} through the bytes directly — provided every such write
    stays below [size t] as of the returned stamp and is paired with a
    {!bump_version}.  Valid only while [page_gen t] equals the stamp:
    anything that could invalidate a cached writable view ({!copy}
    sharing the page out, a COW break, {!resize}) bumps the counter. *)
val owned_page_view : t -> int -> (Bytes.t * int) option

(** [bump_version t] registers an out-of-band content mutation done
    through {!owned_page_view} bytes, keeping {!version}'s contract that
    it moves with every content write. *)
val bump_version : t -> unit

(** [resize t n] sets the logical size (zero-extends; truncation clears
    the dropped bytes so re-growth reads zeroes).
    @raise Invalid_argument if [n < 0] or [n > max_size t]. *)
val resize : t -> int -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit

(** [blit_in t ~dst_off src] copies [src] into the segment, growing it. *)
val blit_in : t -> dst_off:int -> Bytes.t -> unit

(** [blit_out t ~src_off ~len] copies bytes out (reads beyond [size] are
    zeroes, up to [max_size]). *)
val blit_out : t -> src_off:int -> len:int -> Bytes.t

(** [read_into t ~src_off dst ~dst_off ~len] copies [len] bytes out into
    [dst] (reads beyond [size] are zeroes, same as repeated [get_u8]). *)
val read_into : t -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> unit

(** [write_from t ~dst_off src ~src_off ~len] copies [len] bytes from
    [src] into the segment, growing it (same as repeated [set_u8]). *)
val write_from : t -> dst_off:int -> Bytes.t -> src_off:int -> len:int -> unit

(** [replace t b] swaps the whole contents for [b]: one content blit,
    one size update, one version bump.  Unlike [resize 0] + [blit_in]
    there is no intermediate state in which the segment is visibly empty
    or half-written — existing mappings observe either the old contents
    or the new.  Validation precedes any mutation.
    @raise Invalid_argument if [Bytes.length b > max_size t]. *)
val replace : t -> Bytes.t -> unit

(** [release t] drops every page (decrementing shared refcounts) and
    zeroes the logical size — the deterministic teardown for a segment
    a rollback path is discarding.  A page still shared with another
    segment returns to sole ownership there, so its next write happens
    in place instead of COW-copying.  Deliberately {e not} called on
    process exit (see the refcount rule in the header): only explicit
    unmap/replace-style teardown may release, keeping [pages_copied]
    independent of the host GC. *)
val release : t -> unit

(** [copy t] is a snapshot with identical contents and a fresh identity —
    the private half of fork.  With {!cow_enabled} (the default) the
    snapshot shares [t]'s pages by reference count and bills the skipped
    copying to [Stats.bytes_saved]; writes through either segment then
    copy single pages on demand (billed to [Stats.pages_copied]).  With
    it off, an eager deep copy. *)
val copy : t -> t

(** Number of 4 KiB pages currently allocated (holes read as zeroes and
    occupy nothing). *)
val allocated_pages : t -> int

(** Number of allocated pages currently shared with at least one other
    segment (refcount > 1). *)
val shared_pages : t -> int

(** Whole current contents (length = [size t]). *)
val contents : t -> Bytes.t

val pp : Format.formatter -> t -> unit

(** Pager-side identity of a mapped {!Segment}: which pages are
    resident, how first touches materialise ({!kind}), and when resident
    pages are reclaimed under a bounded simulated RAM.

    The segment stays the page {e store}; a VmObject is pure residency
    accounting shared by every mapping of that segment (page-cache
    semantics — the registry is keyed by segment id).  Eviction never
    discards contents: it clears the residency bit, pushes dirty
    file-backed pages through the owning file system's journalled
    writeback barrier, and invalidates every attached address space so
    the next touch re-faults through the slow path.

    All pager work is kernel-internal, exactly like COW: pager faults
    are never delivered to user handlers, never billed to
    [Stats.faults], and consume no fuel — the golden transcripts are
    byte-identical with the pager on, off ([HEMLOCK_NO_PAGER]), or
    squeezed ([HEMLOCK_RAM_PAGES]). *)

type kind =
  | Anonymous  (** no backing identity: stacks, heaps, private images *)
  | Pinned  (** always resident; never faults, never evicted.  The
                default for raw {!Address_space.map} callers, which may
                have no kernel around to resolve pager faults. *)
  | File_backed of { path : string; writeback : page:int -> unit }
      (** backed by a shared-partition file; [writeback] is the owning
          file system's journalled durability barrier for one page
          (see [Fs.page_writeback]) *)

type t

(** Kill switch: [false] (set [HEMLOCK_NO_PAGER]) restores eager
    whole-segment population — everything resident, nothing evicted. *)
val enabled : bool ref

(** Simulated RAM in pages ([None] = unbounded, the default; set
    [HEMLOCK_RAM_PAGES]).  Values are clamped to {!min_ram_pages} when
    consumed.  Change it only around {!reset}. *)
val ram_pages : int option ref

(** Floor for {!ram_pages}: below this the clock would thrash the
    handful of pages one instruction needs simultaneously live. *)
val min_ram_pages : int

(** [get_or_create seg kind] is the object for [seg], creating it with
    [kind] on first sight.  A [Pinned] request {e promotes} an existing
    pageable object (its frames leave the clock uncounted): a raw
    mapper's eager expectations win over demand paging. *)
val get_or_create : Segment.t -> kind -> t

(** Whether the pager manages this object at all ([enabled] and not
    pinned). *)
val pageable : t -> bool

(** Whether the object's kind is [Pinned] (independent of [enabled]) —
    the kind-inheritance test for fork's private copies. *)
val is_pinned : t -> bool

(** [resident t off] — is the page holding byte offset [off] resident?
    Always true for non-pageable objects. *)
val resident : t -> int -> bool

(** [touch t off ~write] marks the page referenced (clock second
    chance) and, for [write], dirty.  No-op if not pageable. *)
val touch : t -> int -> write:bool -> unit

(** [materialise t off ~write] makes the page holding [off] resident,
    billing [major_faults] (file-backed content to read) or
    [minor_faults] (zero-fill / in-memory) and evicting a victim first
    when the {!ram_pages} budget is full.  Idempotent on resident
    pages (degrades to {!touch}). *)
val materialise : t -> int -> write:bool -> unit

(** [attach t ~uid invalidate] registers an address space (by its
    unique id) mapping this object; [invalidate] is called — bumping
    the space's epoch — whenever one of the object's pages is evicted.
    Multiple mappings by one space are refcounted. *)
val attach : t -> uid:int -> (unit -> unit) -> unit

val detach : t -> uid:int -> unit

(** Drop [seg]'s object: frames leave the clock uncounted, residency
    clears, the registry entry disappears.  For teardown paths that
    know the segment is discarded (e.g. the linker unwinding a private
    instance). *)
val forget : Segment.t -> unit

(** High-water mark of [Stats.resident_pages] since the last {!reset}. *)
val peak_resident : unit -> int

(** Forget {e all} pager state: registry, clock, gauge, peak.  Only
    sound when no previously-mapped segment will be touched again —
    the bench harness calls it between isolated kernel boots. *)
val reset : unit -> unit

(* Interval-keyed reader/writer locks over page ranges.

   One [t] guards one address space.  A hold covers a half-open page
   range [lo, hi); two holds conflict when their ranges overlap and at
   least one is [Exclusive].  Acquire blocks on a condition variable
   until no conflicting hold remains, so concurrent faults, maps and
   materialisations on disjoint ranges of the same space never wait on
   each other, while overlapping writers serialise.

   Deadlock-freedom is structural, not clever: the contract is one held
   range per thread of control ([with_range] never nests on the same
   [t]), so a waiting thread holds nothing and no wait cycle can form.

   Kill switch: with [HEMLOCK_NO_RANGELOCK] set, every acquisition is
   promoted to an exclusive whole-space hold — the lock degenerates to
   one big mutex per space, the bisection tool for suspected
   range-granularity bugs. *)

type mode = Shared | Exclusive

type hold = { h_lo : int; h_hi : int; h_mode : mode }

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable holds : hold list;  (* sorted by [h_lo]; short in practice *)
  big : bool;  (* kill switch: behave as a single mutex *)
}

let no_rangelock =
  match Sys.getenv_opt "HEMLOCK_NO_RANGELOCK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let create () =
  { lock = Mutex.create (); cond = Condition.create (); holds = []; big = no_rangelock }

(* half-open ranges: [a_lo, a_hi) meets [b_lo, b_hi) *)
let overlaps a_lo a_hi b_lo b_hi = a_lo < b_hi && b_lo < a_hi

let conflicts mode lo hi h =
  overlaps lo hi h.h_lo h.h_hi && (mode = Exclusive || h.h_mode = Exclusive)

let rec insert h = function
  | [] -> [ h ]
  | h' :: rest when h'.h_lo < h.h_lo -> h' :: insert h rest
  | holds -> h :: holds

let acquire t ~lo ~hi mode =
  if hi <= lo then invalid_arg "Range_lock.acquire: empty range";
  Mutex.lock t.lock;
  if t.big then begin
    (* whole-space exclusivity, whatever was asked for *)
    while t.holds <> [] do
      Condition.wait t.cond t.lock
    done;
    t.holds <- [ { h_lo = lo; h_hi = hi; h_mode = Exclusive } ]
  end
  else begin
    while List.exists (conflicts mode lo hi) t.holds do
      Condition.wait t.cond t.lock
    done;
    t.holds <- insert { h_lo = lo; h_hi = hi; h_mode = mode } t.holds
  end;
  Mutex.unlock t.lock

let release t ~lo ~hi =
  Mutex.lock t.lock;
  let rec drop_first = function
    | [] -> invalid_arg "Range_lock.release: range not held"
    | h :: rest when h.h_lo = lo && h.h_hi = hi -> rest
    | h :: rest -> h :: drop_first rest
  in
  t.holds <- drop_first t.holds;
  (* broadcast, not signal: several disjoint waiters may now all fit *)
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let with_range t ~lo ~hi mode f =
  acquire t ~lo ~hi mode;
  Fun.protect ~finally:(fun () -> release t ~lo ~hi) f

let held t =
  Mutex.lock t.lock;
  let holds = List.map (fun h -> (h.h_lo, h.h_hi, h.h_mode)) t.holds in
  Mutex.unlock t.lock;
  holds

(** A per-process virtual address space: a page-granular table mapping
    address ranges to {!Segment.t} windows with protections.

    Accesses that touch an unmapped address or violate protection raise
    {!Fault}; the kernel turns that into SIGSEGV delivery, which is the
    engine behind both of Hemlock's fault-handler duties (lazy linking
    and mapping shared segments on pointer dereference). *)

type t

(** Why an access faulted: the address had no mapping at all, the
    mapping's protection forbade the access, or the page is mapped but
    not materialised ([Not_resident] — resolved kernel-internally by
    {!resolve_pager}, never delivered to user handlers and never billed,
    exactly like COW).  Checked in that order: bounds, then residency,
    then protection. *)
type fault_reason = Unmapped | Protection | Not_resident

exception Fault of { addr : int; access : Prot.access; reason : fault_reason }

(** Whether a mapping is copied or shared across [fork]; private-region
    addresses are overloaded per process, public ones globally unique. *)
type share = Private | Public

type mapping = {
  seg : Segment.t;
  seg_off : int;  (** segment offset backing the mapping's base *)
  prot : Prot.t;  (** logical protection (what {!pp} shows); a COW
                      mapping's {e effective} protection additionally
                      strips write until {!resolve_cow} runs *)
  share : share;
  label : string;  (** human-readable provenance, e.g. a module path *)
  cow : bool;
      (** set by {!clone} on writable private mappings: pages are
          refcount-shared with the other space and the first store must
          fault into {!resolve_cow} *)
  obj : Vm_object.t;
      (** pager-side identity: residency, backing kind, clock state.
          Shared by every mapping of the same segment. *)
}

(** Raised by {!read_cstring} when no NUL terminator appears within the
    64 KB bound; the kernel surfaces it as [EFAULT] at syscall
    boundaries. *)
exception Cstring_unterminated of int

(** Default for {!create}'s [?caching]: [true] unless the
    [HEMLOCK_NO_TLB] environment variable is set.  The TLB and the
    bulk-copy fast paths are observability-only — simulated costs are
    identical either way; the switch exists so the slow path stays
    testable. *)
val caching_default : bool ref

(** [create ()] makes an empty space.  [~caching:false] disables the
    software TLB for this space (every access takes the interval-map
    slow path). *)
val create : ?caching:bool -> unit -> t

(** Invalidation epoch: bumped by every [map]/[unmap]/[protect].
    Derived caches (e.g. the CPU's decoded-instruction cache) must be
    discarded when it changes. *)
val epoch : t -> int

(** [map t ~base ~len ~seg ~prot ~share ~label] installs a mapping.
    [base] and [len] must be page-aligned; the range must be unmapped
    user space.  @raise Invalid_argument otherwise.

    [?kind] (default [Vm_object.Pinned]) selects how pages materialise.
    The default keeps raw callers — tests, libraries with no kernel
    around to resolve pager faults — on the seed's eager always-resident
    behaviour; kernel-managed sites opt into [Anonymous] (stack, heap,
    exec images, private module instances) or [File_backed] (shared-file
    mappings, public module instances). *)
val map :
  t ->
  base:int ->
  len:int ->
  seg:Segment.t ->
  ?seg_off:int ->
  ?kind:Vm_object.kind ->
  prot:Prot.t ->
  share:share ->
  label:string ->
  unit ->
  unit

(** [unmap t addr] removes the mapping containing [addr] (no-op if
    none), detaching its {!Vm_object.t}. *)
val unmap : t -> int -> unit

(** [detach_all t] drops every {!Vm_object.t} attachment (eviction
    stops invalidating this space) but keeps the mapping table — what
    process exit wants, so a zombie's mappings stay inspectable.
    Segment page refcounts are deliberately {e not} released (see the
    rule in {!Segment}). *)
val detach_all : t -> unit

(** [teardown t] = {!detach_all} plus unmapping everything — the
    deterministic teardown for exec discarding the replaced image. *)
val teardown : t -> unit

(** [protect t addr prot] changes the protection of the whole mapping
    containing [addr].  @raise Not_found if unmapped. *)
val protect : t -> int -> Prot.t -> unit

(** The mapping containing [addr], with its [(lo, hi)] range. *)
val mapping_at : t -> int -> (int * int * mapping) option

(** All mappings in address order. *)
val mappings : t -> (int * int * mapping) list

(** [find_gap t ~lo ~hi ~size] finds a free page-aligned range. *)
val find_gap : t -> lo:int -> hi:int -> size:int -> int option

(** Checked accesses; raise {!Fault}. *)

val load_u8 : t -> int -> int
val load_u32 : t -> int -> int
val store_u8 : t -> int -> int -> unit
val store_u32 : t -> int -> int -> unit

(** Instruction fetch: a 32-bit load requiring execute permission. *)
val fetch : t -> int -> int

(** [exec_view t addr] validates a 4-byte exec access at [addr] exactly
    like {!fetch} (raising the same faults) and returns the mapping
    geometry [(seg, delta, hi)], where [addr' + delta] is the segment
    offset of any [addr'] in the same mapping and [hi] is its exclusive
    bound.  The result is valid until {!epoch} changes.  Used by the
    CPU's decoded-instruction cache. *)
val exec_view : t -> int -> Segment.t * int * int

(** [data_view t addr access] is the mapping geometry [(seg, delta, hi)]
    behind [addr] when its {e effective} protection allows [access]
    (a COW mapping's stripped write counts as not allowing it), else
    [None].  Unlike the checked accessors it never raises and never
    touches the TLB; the result is valid until {!epoch} changes.  Used
    by the trace JIT to fill its inline load/store caches. *)
val data_view : t -> int -> Prot.access -> (Segment.t * int * int) option

(** [read_bytes t addr len] performs [len] checked byte reads. *)
val read_bytes : t -> int -> int -> Bytes.t

(** [write_bytes t addr b] performs checked byte writes. *)
val write_bytes : t -> int -> Bytes.t -> unit

(** Read a NUL-terminated string (bounded at 64 KB). *)
val read_cstring : t -> int -> string

(** [clone t] implements the memory half of fork: private mappings get
    fresh copied segments, public mappings alias the originals.

    With [Segment.cow_enabled] (the default) the copies share pages by
    reference count, writable private mappings are flagged [cow] in
    {e both} spaces (effective protection loses write, and both TLBs are
    flushed via the epoch), and nothing is billed to [bytes_copied];
    the first store on either side faults into {!resolve_cow}.  With it
    off, eager deep copies billed to [bytes_copied], as before. *)
val clone : t -> t

(** [resolve_cow t addr] is the kernel's half of the COW protocol: on a
    write protection fault at [addr], if the mapping is [cow] and its
    logical protection allows the write, clear the flag (restoring the
    original protection), bump the {!epoch}, bill one [cow_faults], and
    return [true] — the caller retries the faulting access, which
    un-shares pages one by one at the segment layer as it writes.
    Returns [false] for genuine protection faults (deliver SIGSEGV). *)
val resolve_cow : t -> int -> bool

(** [resolve_pager t addr access] is the kernel's half of the demand
    paging protocol: on a [Not_resident] fault, materialise the page
    (evicting a victim first when the RAM budget is full), bill
    [major_faults]/[minor_faults], and return [true] — the caller
    retries the access.  Returns [false] when [addr] is unmapped or the
    mapping is pinned (fall through to COW/SIGSEGV handling). *)
val resolve_pager : t -> int -> Prot.access -> bool

val pp : Format.formatter -> t -> unit

(** An SPMD pool over OCaml 5 domains with lockstep rounds.

    The calling domain is worker [0]; [create ~domains:n] spawns [n - 1]
    additional domains that sleep between rounds.  [round] runs one job
    on every worker and acts as a full barrier: it returns only after
    all [n] shares have completed, so consecutive rounds never overlap.

    With [domains = 1] the pool spawns nothing and [round] is a plain
    call — the deterministic single-domain oracle costs no
    synchronisation at all.

    Each worker domain accumulates into its own {!Stats.cur} record;
    {!shutdown} joins the workers in index order and merges their
    records into the caller's, so merged totals are reproducible for
    any domain count given the same work partition. *)

type t

(** [create ~domains] spawns [domains - 1] worker domains.
    @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** Total worker count including the caller (the [~domains] argument). *)
val domains : t -> int

(** [round t f] runs [f w] for every worker index [w] in
    [0 .. domains - 1] — [f 0] on the calling domain, the rest on the
    pool's domains — and returns once all have finished.  If any share
    raises, [round] still waits for the full barrier, then re-raises
    the exception from the lowest worker index (deterministic under
    races).  Jobs must not call [round] or [shutdown] on the same
    pool. *)
val round : t -> (int -> unit) -> unit

(** Ask the workers to exit, join them in index order, and fold each
    worker's {!Stats.cur} record into the calling domain's via
    {!Stats.merge_into}.  Idempotent.  The pool is unusable
    afterwards. *)
val shutdown : t -> unit

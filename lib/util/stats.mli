(** Deterministic cost accounting for the simulator.

    The paper reports wall-clock effects of replacing files and messages
    with shared memory; our substrate is an interpreter, so experiments
    report these deterministic counters (plus Bechamel wall times of the
    simulator itself).  Counters are global; the benchmark harness resets
    them around each measured region. *)

type t = {
  mutable instructions : int;  (** ISA instructions retired *)
  mutable syscalls : int;  (** kernel traps *)
  mutable bytes_copied : int;  (** memcpy work: file I/O, messages, fork *)
  mutable faults : int;  (** access faults delivered to handlers *)
  mutable pages_mapped : int;  (** pages added to an address space *)
  mutable modules_linked : int;  (** modules relocated+resolved *)
  mutable relocs_applied : int;
  mutable symbols_resolved : int;
  mutable files_opened : int;
  mutable messages_sent : int;
  mutable context_switches : int;
  mutable tlb_hits : int;
      (** software-TLB hits in [Address_space] (observability only) *)
  mutable tlb_misses : int;
      (** software-TLB misses, i.e. full interval-map lookups *)
  mutable decode_hits : int;
      (** decoded-instruction cache hits in [Cpu] (observability only) *)
  mutable sym_hash_hits : int;
      (** symbol lookups answered by a hashed export index or a
          resolution cache (observability only) *)
  mutable sym_hash_misses : int;
      (** hashed lookups that found nothing (bloom reject or empty
          bucket) and fell through to "undefined" *)
  mutable plan_hits : int;  (** link passes replayed from a memoized plan *)
  mutable plan_misses : int;
      (** link passes that ran cold (no plan, or plan rejected) *)
  mutable search_cache_hits : int;
      (** [Search.locate] results served from the path-resolution cache *)
  mutable stable_persists : int;
      (** link plans / symbol indexes written under [/shared/.stable]
          by a stable-link sync (the writes themselves are billed as
          ordinary file writes; this counts the persisted files) *)
  mutable stable_loads : int;
      (** persisted stable-link files loaded and digest-verified after
          a reboot (observability only) *)
  mutable stable_rejects : int;
      (** persisted stable-link files rejected — corrupt, truncated,
          key/digest mismatch, or stale against the live template — and
          reaped on first failed load *)
  mutable faults_injected : int;
      (** {!Fault} firings (injected errors and simulated crashes);
          zero unless a fault plan is armed *)
  mutable journal_replays : int;
      (** intent-journal entries [Fs.fsck] rolled forward at recovery *)
  mutable journal_rollbacks : int;
      (** intent-journal entries [Fs.fsck] rolled back at recovery *)
  mutable link_rollbacks : int;
      (** partial module instantiations the linker unwound after a
          mid-instantiation failure *)
  mutable plan_fallbacks : int;
      (** link-plan replays abandoned mid-way for the cold path *)
  mutable ipc_retries : int;  (** [pd_call] retries after transient EAGAIN *)
  mutable net_delivered : int;
      (** cluster datagrams that landed in a peer inbox (observability
          only — delivered traffic is billed as [messages_sent]) *)
  mutable net_dropped : int;
      (** cluster datagrams lost to the simulated network: profile
          loss, an active partition, or an injected [net.*] fault *)
  mutable net_duplicated : int;
      (** extra datagram copies the simulated network injected *)
  mutable net_retransmits : int;
      (** reliable-send retransmissions after an ack timeout *)
  mutable cow_faults : int;
      (** protection faults resolved inside the kernel by breaking a
          copy-on-write mapping (never delivered to user handlers, never
          billed to [faults]) *)
  mutable pages_copied : int;
      (** 4 KiB pages physically copied when a write diverged from a
          COW-shared page (observability only — excluded from [cycles]) *)
  mutable bytes_saved : int;
      (** bytes a [Segment.copy] shared by reference counting instead of
          copying (fork, exec and module-instantiation images) *)
  mutable jit_compiles : int;
      (** traces compiled by the trace JIT, recompiles included
          (observability only — excluded from [cycles]) *)
  mutable jit_hits : int;  (** trace-cache entries that ran a compiled trace *)
  mutable jit_exits : int;
      (** guard side exits taken out of compiled traces back into the
          interpreter (conditional branches, unknown indirect targets,
          code-version changes) *)
  mutable jit_invalidations : int;
      (** compiled traces discarded because their code bytes or mapping
          geometry changed (self-modifying code, remapping, COW breaks) *)
  mutable major_faults : int;
      (** pager faults whose page had backing content to "read in" (a
          file-backed page already written on the shared partition);
          resolved inside the kernel like COW — never delivered, never
          billed to [faults], excluded from [cycles] *)
  mutable minor_faults : int;
      (** pager faults satisfied by zero-fill or an in-memory page
          (anonymous stacks/heaps, untouched file tails) *)
  mutable pages_evicted : int;
      (** resident pages reclaimed by the clock hand under a bounded
          [HEMLOCK_RAM_PAGES] budget *)
  mutable pages_written_back : int;
      (** evicted dirty file-backed pages pushed through the intent
          journal's durability barrier before reclaim *)
  mutable resident_pages : int;
      (** gauge (not cumulative): pageable pages currently resident.
          [diff] reports the [after] side's gauge, and [reset] leaves
          it alone — it tracks live pager state, not a measured delta. *)
}

(** The main domain's counter set.  On the main domain [cur () == global];
    tests and benchmarks that read [global] directly keep working. *)
val global : t

(** The calling domain's counter record.  The main domain's record is
    [global]; each worker domain gets an independent zeroed record, so
    counting never contends across domains.  Worker records are merged
    into the spawner's record — in worker-index order — when a
    {!Domain_pool} shuts down. *)
val cur : unit -> t

(** [merge_into ~into t] adds every field of [t] into [into].  All
    fields are sums (the [resident_pages] gauge merges as the sum of the
    domains' live resident sets), so merging is order-independent; the
    pool still fixes worker-index order as the documented contract. *)
val merge_into : into:t -> t -> unit

val reset : unit -> unit

(** An independent snapshot of the current totals. *)
val snapshot : unit -> t

(** [diff ~before ~after] is the per-field difference. *)
val diff : before:t -> after:t -> t

(** Abstract "simulated time" of a snapshot: a fixed linear cost model
    over the counters (instructions + weighted syscall/copy/fault costs),
    in simulated cycles.  Used to compare alternatives on one axis. *)
val cycles : t -> int

val pp : Format.formatter -> t -> unit

(** [measure f] runs [f ()] and returns its result together with the
    counter deltas it produced. *)
val measure : (unit -> 'a) -> 'a * t

(** Flat JSON object mapping every counter name to its value, e.g.
    [{ "instructions": 123, ... }].  Embedded by the benches in their
    BENCH_*.json files and by the linkstat dump. *)
val to_json : t -> string

(** Parse the object shape {!to_json} emits (keys in any order; unknown
    keys ignored; missing keys zero).  Round-trips {!to_json} exactly. *)
val of_json : string -> t

(* An SPMD pool over OCaml 5 domains with lockstep rounds.

   The caller is worker 0; [create ~domains] spawns [domains - 1] extra
   domains that park on a condition variable between rounds.  [round]
   publishes one job, runs share 0 on the calling domain, and returns
   only after every worker has finished its share — a full barrier, so
   round N+1 never observes a torn round N.

   Worker domains count into their own [Stats.cur ()] record; at
   [shutdown] each worker returns that record and the pool merges them
   into the spawner's record in worker-index order, so the merged totals
   are identical for every [domains] setting given the same work
   partition. *)

type t = {
  domains : int;
  lock : Mutex.t;
  start : Condition.t;  (* a new round (or quit) was posted *)
  finish : Condition.t;  (* a worker completed the current round *)
  mutable gen : int;  (* round number; workers run when it passes theirs *)
  mutable fn : int -> unit;  (* the current round's job *)
  mutable quit : bool;
  mutable pending : int;  (* workers still inside the current round *)
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
  mutable handles : Stats.t Domain.t array;
  mutable alive : bool;
}

let domains t = t.domains

let worker_loop t w =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.quit) && t.gen = !seen do
      Condition.wait t.start t.lock
    done;
    if t.quit then begin
      Mutex.unlock t.lock;
      (* the worker's whole count record rides home through [join] *)
      Stats.cur ()
    end
    else begin
      seen := t.gen;
      let fn = t.fn in
      Mutex.unlock t.lock;
      let err =
        try
          fn w;
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      (match err with
      | Some (e, bt) -> t.failures <- (w, e, bt) :: t.failures
      | None -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finish;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: need at least one domain";
  let t =
    {
      domains;
      lock = Mutex.create ();
      start = Condition.create ();
      finish = Condition.create ();
      gen = 0;
      fn = ignore;
      quit = false;
      pending = 0;
      failures = [];
      handles = [||];
      alive = true;
    }
  in
  t.handles <-
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let round t fn =
  if not t.alive then invalid_arg "Domain_pool.round: pool is shut down";
  if t.domains = 1 then fn 0
  else begin
    Mutex.lock t.lock;
    t.fn <- fn;
    t.gen <- t.gen + 1;
    t.pending <- t.domains - 1;
    t.failures <- [];
    Condition.broadcast t.start;
    Mutex.unlock t.lock;
    (* share 0 runs here, concurrently with the workers *)
    let err0 =
      try
        fn 0;
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.finish t.lock
    done;
    let failures = t.failures in
    Mutex.unlock t.lock;
    let failures =
      match err0 with Some (e, bt) -> (0, e, bt) :: failures | None -> failures
    in
    (* every worker reached the barrier; re-raise the lowest-index
       failure so which exception wins never depends on scheduling *)
    match List.sort (fun (a, _, _) (b, _, _) -> compare a b) failures with
    | [] -> ()
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  end

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.lock;
    t.quit <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.lock;
    (* join — and merge counters — in worker-index order, so totals are
       deterministic whatever order the domains actually exited in *)
    Array.iter
      (fun h ->
        let worker_stats = Domain.join h in
        Stats.merge_into ~into:(Stats.cur ()) worker_stats)
      t.handles;
    t.handles <- [||]
  end

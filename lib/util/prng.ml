type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

(* Deterministic stream splitting (SplitMix-style): a child stream's
   seed state is a mixed draw from the parent, so parent and child
   sequences are independent and reproducible from the root seed
   alone — no shared mutable state between the two. *)
let split t =
  let z = Int64.add t.state golden in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  { state = Int64.logxor z 0xA3EC647659359ACDL }

(* The [index]-th stream of a seed family: stream [i] is the [i]-th
   split of a root generator.  Per-domain consumers (one stream per
   domain, split from the run's seed) use this so their draws are
   deterministic under any machine-to-domain partition. *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Prng.stream: negative index";
  let root = create ~seed in
  let rec skip i = if i = 0 then split root else (ignore (split root); skip (i - 1)) in
  skip index

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod n

let range t lo hi =
  if lo >= hi then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo)

let bool t = next t land 1 = 1

let float t = Float.of_int (next t) /. Float.of_int (1 lsl 62)

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Little-endian byte-level codecs used by the object-file format, the
    a.out format, and the simulated memory.  All 32-bit quantities are
    stored as OCaml [int]s masked to 32 bits. *)

val mask32 : int -> int

(** Sign-extend the low 16 bits. *)
val sext16 : int -> int

(** Sign-extend the low 32 bits (for arithmetic in the simulated CPU). *)
val sext32 : int -> int

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val set_u32 : Bytes.t -> int -> int -> unit

(** Unchecked 32-bit accessors for callers that have already bounds-checked
    the offset (the trace JIT's inline caches, page-local accesses). *)
val unsafe_get_u32 : Bytes.t -> int -> int

val unsafe_set_u32 : Bytes.t -> int -> int -> unit

(** Growable byte buffer with primitive emitters. *)
module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit

  (** Length-prefixed (u16) string. *)
  val str : t -> string -> unit

  val bytes : t -> Bytes.t -> unit
  val contents : t -> Bytes.t
end

(** Sequential reader over bytes; raises [Failure] on truncation. *)
module Reader : sig
  type t

  val create : Bytes.t -> t
  val pos : t -> int
  val eof : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val str : t -> string
  val bytes : t -> int -> Bytes.t
end

type failure = Eio | Enospc | Eagain

exception Injected of { site : string; failure : failure }
exception Crash of { site : string }

type action = Fail of failure | Crash_here

type arm = { at : int; act : action }

(* The armed plan is written by [configure]/[clear] on the spawning
   domain only, before any worker domain runs, and is read-only while
   domains execute — so the table needs no lock.  Hit {e counters} are
   per-domain (a DLS-keyed table): each domain owns an independent
   deterministic stream of site ordinals, so a plan like "site@3=crash"
   fires at the third hit {e on that domain}, reproducible under any
   fixed machine-to-domain partition. *)
let armed : (string, arm list) Hashtbl.t = Hashtbl.create 16

let counts_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let counts () = Domain.DLS.get counts_key

let enabled = ref false

let active () = !enabled

let hits site = Option.value ~default:0 (Hashtbl.find_opt (counts ()) site)

let clear () =
  enabled := false;
  Hashtbl.reset armed;
  Hashtbl.reset (counts ())

let failure_name = function Eio -> "eio" | Enospc -> "enospc" | Eagain -> "eagain"

let action_of_string = function
  | "eio" -> Fail Eio
  | "enospc" -> Fail Enospc
  | "eagain" -> Fail Eagain
  | "crash" -> Crash_here
  | s -> invalid_arg (Printf.sprintf "Fault.configure: unknown action %S" s)

(* "site@N=kind" terms joined by ',' or ';'. *)
let configure plan =
  clear ();
  let terms =
    List.concat_map (String.split_on_char ';') (String.split_on_char ',' plan)
  in
  let add term =
    let term = String.trim term in
    if term <> "" then begin
      match String.index_opt term '@' with
      | None -> invalid_arg (Printf.sprintf "Fault.configure: missing '@' in %S" term)
      | Some i -> (
        let site = String.sub term 0 i in
        let rest = String.sub term (i + 1) (String.length term - i - 1) in
        match String.index_opt rest '=' with
        | None -> invalid_arg (Printf.sprintf "Fault.configure: missing '=' in %S" term)
        | Some j ->
          let at =
            match int_of_string_opt (String.sub rest 0 j) with
            | Some n when n >= 1 -> n
            | Some _ | None ->
              invalid_arg (Printf.sprintf "Fault.configure: bad ordinal in %S" term)
          in
          let act = action_of_string (String.sub rest (j + 1) (String.length rest - j - 1)) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt armed site) in
          Hashtbl.replace armed site ({ at; act } :: prev))
    end
  in
  List.iter add terms;
  enabled := Hashtbl.length armed > 0

(* The sites where a crash interrupts a multi-step /shared mutation —
   the interesting half of the state space for the fsck property — plus
   the simulated network's per-datagram send/deliver points, where an
   injected error loses the datagram and a crash kills the machine
   mid-transmission. *)
let default_sites =
  [|
    "fs.create"; "fs.create.mid"; "fs.create.commit"; "fs.write"; "fs.append";
    "fs.rename"; "fs.rename.mid"; "fs.rename.commit"; "fs.unlink"; "fs.unlink.mid";
    "mod.create"; "mod.create.mid"; "fs.pageout"; "net.send"; "net.deliver";
    "fs.stable";
  |]

let configure_random ?(sites = default_sites) seed =
  clear ();
  let prng = Prng.create ~seed in
  let arms = 1 + Prng.int prng 2 in
  for _ = 1 to arms do
    let site = Prng.choose prng sites in
    let at = 1 + Prng.int prng 8 in
    let act =
      (* crashes half the time; the rest split across the errnos *)
      if Prng.bool prng then Crash_here
      else Fail [| Eio; Enospc; Eagain |].(Prng.int prng 3)
    in
    let prev = Option.value ~default:[] (Hashtbl.find_opt armed site) in
    Hashtbl.replace armed site ({ at; act } :: prev)
  done;
  enabled := true

let hit site =
  if !enabled then begin
    let n = hits site + 1 in
    Hashtbl.replace (counts ()) site n;
    match Hashtbl.find_opt armed site with
    | None -> ()
    | Some arms -> (
      match List.find_opt (fun a -> a.at = n) arms with
      | None -> ()
      | Some { act; _ } -> (
        (Stats.cur ()).faults_injected <- (Stats.cur ()).faults_injected + 1;
        match act with
        | Fail failure -> raise (Injected { site; failure })
        | Crash_here ->
          (* the machine stops: nothing injects during the unwind *)
          enabled := false;
          raise (Crash { site })))
  end

(* Environment-driven arming, so whole binaries (the CI fault sweep, the
   golden-transcript runs) can inject without code changes. *)
let () =
  match Sys.getenv_opt "HEMLOCK_FAULT_PLAN" with
  | Some plan -> configure plan
  | None -> (
    match Option.bind (Sys.getenv_opt "HEMLOCK_FAULT_SEED") int_of_string_opt with
    | Some seed -> configure_random seed
    | None -> ())

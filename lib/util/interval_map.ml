module M = Map.Make (Int)

(* Keyed by [lo]; the value carries [hi] (exclusive).  The non-overlap
   invariant is enforced by [add], so stabbing queries only need to look
   at the binding with the greatest [lo <= p]. *)
type 'a t = (int * 'a) M.t

let empty = M.empty

let is_empty = M.is_empty

let cardinal = M.cardinal

let pred_binding p t = M.find_last_opt (fun lo -> lo <= p) t

let find p t =
  match pred_binding p t with
  | Some (lo, (hi, v)) when p < hi -> Some (lo, hi, v)
  | Some _ | None -> None

let find_exn p t =
  match find p t with
  | Some b -> b
  | None -> raise Not_found

let mem p t = Option.is_some (find p t)

let overlaps ~lo ~hi t =
  if lo >= hi then false
  else
    match pred_binding (hi - 1) t with
    | Some (_, (bhi, _)) when bhi > lo -> true
    | Some _ | None -> false

let add ~lo ~hi v t =
  if lo >= hi then invalid_arg "Interval_map.add: empty interval";
  if overlaps ~lo ~hi t then invalid_arg "Interval_map.add: overlap";
  M.add lo (hi, v) t

let remove p t =
  match find p t with
  | Some (lo, _, _) -> M.remove lo t
  | None -> t

let update p f t =
  match find p t with
  | Some (lo, hi, v) -> M.add lo (hi, f v) t
  | None -> raise Not_found

let iter f t = M.iter (fun lo (hi, v) -> f lo hi v) t

let fold f t init = M.fold (fun lo (hi, v) acc -> f lo hi v acc) t init

let to_list t = List.rev (fold (fun lo hi v acc -> (lo, hi, v) :: acc) t [])

(* Walks the underlying map in key order without materialising it as a
   list; [Found] short-circuits as soon as a gap fits before a binding. *)
exception Found of int

let first_gap ~lo ~hi ~size t =
  if size <= 0 then invalid_arg "Interval_map.first_gap: size <= 0";
  match
    M.fold
      (fun blo (bhi, _) base ->
        if bhi <= base then base
        else if base + size <= blo then raise (Found base)
        else max base bhi)
      t lo
  with
  | base -> if base + size <= hi then Some base else None
  | exception Found base -> Some base

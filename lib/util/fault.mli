(** Deterministic fault injection.

    The simulator's failure story has to be as reproducible as its happy
    path: a fault either fires at a precisely chosen point or not at
    all, so a failing seed can be replayed forever.  The engine keeps a
    per-site hit counter; a {e plan} arms a site to fire at its Nth hit,
    either as a recoverable error ([Injected], which every kernel
    boundary maps to an errno) or as a simulated {e crash} ([Crash],
    which abandons the operation mid-flight — whatever was mutated so
    far stays mutated, exactly like power loss between disk writes).

    When no plan is armed, {!hit} is a single branch on a [bool ref] —
    the fault layer compiles into production paths at zero simulated and
    near-zero host cost, and E1–E13 outputs are byte-identical.

    Plans come from the environment ([HEMLOCK_FAULT_PLAN], or
    [HEMLOCK_FAULT_SEED] for a PRNG-derived plan) or from
    {!configure}/{!configure_random} in test harnesses.  Every firing is
    counted in {!Stats.t.faults_injected}.

    Canonical site names (the boundaries that inject; see DESIGN.md):
    [fs.create], [fs.create.mid], [fs.create.commit], [fs.write],
    [fs.append], [fs.rename], [fs.rename.mid], [fs.rename.commit],
    [fs.unlink], [fs.unlink.mid], [vfs.open], [vfs.read], [vfs.write],
    [vfs.lseek], [vfs.close], [seg.grow], [ldl.instantiate],
    [ldl.instantiate.mid], [plan.replay], [mod.create],
    [mod.create.mid], [ipc.send], [fs.stable]. *)

type failure = Eio | Enospc | Eagain

(** A recoverable injected failure.  Kernel boundaries catch this and
    answer with the mapped errno; it must never escape the trap
    pipeline. *)
exception Injected of { site : string; failure : failure }

(** A simulated crash: the operation stops dead between two of its
    steps.  Raising disarms the engine (the machine has stopped), so
    unwind code runs injection-free.  Harnesses catch this at the
    operation boundary and then model reboot: [Fs.rescan_shared]
    followed by [Fs.fsck]. *)
exception Crash of { site : string }

(** Whether any plan is armed.  [false] ⇒ {!hit} is a no-op. *)
val active : unit -> bool

(** [hit site] advances [site]'s counter and fires the armed action, if
    any, whose countdown has expired.

    Hit counters are {e per-domain} (the armed plan itself is shared,
    written only between parallel regions): each domain advances an
    independent deterministic stream of ordinals, so ["site@3=crash"]
    fires at the third hit on whichever domain reaches three first —
    reproducible under any fixed machine-to-domain partition. *)
val hit : string -> unit

(** Hits so far at a site on the calling domain (0 when the engine is
    idle). *)
val hits : string -> int

(** [configure plan] arms a plan and resets all counters.  Grammar:
    [site@N=kind] joined by [,] or [;], where [N ≥ 1] is the hit ordinal
    and [kind] is [eio], [enospc], [eagain] or [crash] — e.g.
    ["fs.write@3=eio,plan.replay@1=crash"].
    @raise Invalid_argument on a malformed plan. *)
val configure : string -> unit

(** [configure_random seed] derives a small plan (1–2 arms over
    [?sites], default {!default_sites}) from the PRNG — the seed alone
    reproduces the run. *)
val configure_random : ?sites:string array -> int -> unit

(** Disarm and reset the calling domain's counters.  Call only between
    parallel regions (the plan tables are read-only while worker
    domains run). *)
val clear : unit -> unit

val failure_name : failure -> string

(** The sites {!configure_random} draws from: the multi-step [/shared]
    mutation sites, where a crash leaves real partial state, plus the
    simulated network's [net.send]/[net.deliver] datagram points, where
    an injected error drops the datagram on the floor, plus [fs.stable]
    (the stable-link persist point under [/shared/.stable]). *)
val default_sites : string array

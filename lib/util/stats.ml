type t = {
  mutable instructions : int;
  mutable syscalls : int;
  mutable bytes_copied : int;
  mutable faults : int;
  mutable pages_mapped : int;
  mutable modules_linked : int;
  mutable relocs_applied : int;
  mutable symbols_resolved : int;
  mutable files_opened : int;
  mutable messages_sent : int;
  mutable context_switches : int;
  (* Fast-path observability.  These count host-side cache behaviour of
     the simulator itself and are deliberately excluded from [cycles]:
     the simulated cost model must be byte-identical with the caches on
     or off. *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable decode_hits : int;
  mutable sym_hash_hits : int;
  mutable sym_hash_misses : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable search_cache_hits : int;
  (* Stable-linking observability.  Persisted link plans and symbol
     indexes under /shared/.stable: files written by an explicit sync,
     loaded lazily after a reboot, rejected (and reaped) when stale or
     corrupt.  The persisted writes are billed like any other file
     write at sync time; these counters are host-side observability and
     excluded from [cycles]. *)
  mutable stable_persists : int;
  mutable stable_loads : int;
  mutable stable_rejects : int;
  (* Robustness observability.  Counted by the fault-injection engine
     and the recovery machinery; all zero when no plan is armed, and —
     like the fast-path counters — excluded from [cycles]. *)
  mutable faults_injected : int;
  mutable journal_replays : int;
  mutable journal_rollbacks : int;
  mutable link_rollbacks : int;
  mutable plan_fallbacks : int;
  mutable ipc_retries : int;
  (* Network observability.  Counted by the simulated network layer
     ([Net]/[Cluster]): datagram fates and reliable-send retransmits.
     Excluded from [cycles] — delivered traffic is already billed as
     [messages_sent]/[bytes_copied] on the delivering domain, and the
     default [ideal] profile must leave the cost model byte-identical
     to the loss-free bus it replaces. *)
  mutable net_delivered : int;
  mutable net_dropped : int;
  mutable net_duplicated : int;
  mutable net_retransmits : int;
  (* Copy-on-write observability.  [pages_copied]/[bytes_saved] measure
     how much copying COW actually performed vs avoided; [cow_faults]
     counts the kernel-internal protection faults that break mapping-level
     sharing.  All three are excluded from [cycles]: COW is a semantic
     optimization whose *billed* costs show up as the bytes_copied and
     faults it no longer incurs, and the golden transcripts must stay
     byte-identical with HEMLOCK_NO_COW on or off. *)
  mutable cow_faults : int;
  mutable pages_copied : int;
  mutable bytes_saved : int;
  (* Trace-JIT observability.  Host-side compilation behaviour of the
     trace compiler; excluded from [cycles] — the JIT must leave the
     simulated cost model byte-identical to the interpreter. *)
  mutable jit_compiles : int;
  mutable jit_hits : int;
  mutable jit_exits : int;
  mutable jit_invalidations : int;
  (* Demand-paging observability.  The pager resolves [Not_resident]
     faults inside the kernel, like COW: user programs never observe
     them, [faults] never counts them, and they consume no fuel — so
     all five stay excluded from [cycles] and the golden transcripts
     are byte-identical with HEMLOCK_NO_PAGER on or off and under any
     HEMLOCK_RAM_PAGES.  [resident_pages] is a gauge (current pageable
     resident set), not a cumulative count. *)
  mutable major_faults : int;
  mutable minor_faults : int;
  mutable pages_evicted : int;
  mutable pages_written_back : int;
  mutable resident_pages : int;
}

let zero () =
  {
    instructions = 0;
    syscalls = 0;
    bytes_copied = 0;
    faults = 0;
    pages_mapped = 0;
    modules_linked = 0;
    relocs_applied = 0;
    symbols_resolved = 0;
    files_opened = 0;
    messages_sent = 0;
    context_switches = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    decode_hits = 0;
    sym_hash_hits = 0;
    sym_hash_misses = 0;
    plan_hits = 0;
    plan_misses = 0;
    search_cache_hits = 0;
    stable_persists = 0;
    stable_loads = 0;
    stable_rejects = 0;
    faults_injected = 0;
    journal_replays = 0;
    journal_rollbacks = 0;
    link_rollbacks = 0;
    plan_fallbacks = 0;
    ipc_retries = 0;
    net_delivered = 0;
    net_dropped = 0;
    net_duplicated = 0;
    net_retransmits = 0;
    cow_faults = 0;
    pages_copied = 0;
    bytes_saved = 0;
    jit_compiles = 0;
    jit_hits = 0;
    jit_exits = 0;
    jit_invalidations = 0;
    major_faults = 0;
    minor_faults = 0;
    pages_evicted = 0;
    pages_written_back = 0;
    resident_pages = 0;
  }

let global = zero ()

(* --- per-domain counters ---------------------------------------------
   Every domain owns a private counter record reached through [cur];
   the main domain's record {e is} [global], so single-domain code (and
   every existing test and benchmark) observes exactly the seed's
   behaviour.  Worker domains start from zero and are merged into the
   spawner's record in worker-index order when a domain pool shuts
   down — all fields are sums, so the merged totals are independent of
   the host interleaving. *)

let dls_key = Domain.DLS.new_key zero

let () = Domain.DLS.set dls_key global

let cur () = Domain.DLS.get dls_key

let merge_into ~into t =
  into.instructions <- into.instructions + t.instructions;
  into.syscalls <- into.syscalls + t.syscalls;
  into.bytes_copied <- into.bytes_copied + t.bytes_copied;
  into.faults <- into.faults + t.faults;
  into.pages_mapped <- into.pages_mapped + t.pages_mapped;
  into.modules_linked <- into.modules_linked + t.modules_linked;
  into.relocs_applied <- into.relocs_applied + t.relocs_applied;
  into.symbols_resolved <- into.symbols_resolved + t.symbols_resolved;
  into.files_opened <- into.files_opened + t.files_opened;
  into.messages_sent <- into.messages_sent + t.messages_sent;
  into.context_switches <- into.context_switches + t.context_switches;
  into.tlb_hits <- into.tlb_hits + t.tlb_hits;
  into.tlb_misses <- into.tlb_misses + t.tlb_misses;
  into.decode_hits <- into.decode_hits + t.decode_hits;
  into.sym_hash_hits <- into.sym_hash_hits + t.sym_hash_hits;
  into.sym_hash_misses <- into.sym_hash_misses + t.sym_hash_misses;
  into.plan_hits <- into.plan_hits + t.plan_hits;
  into.plan_misses <- into.plan_misses + t.plan_misses;
  into.search_cache_hits <- into.search_cache_hits + t.search_cache_hits;
  into.stable_persists <- into.stable_persists + t.stable_persists;
  into.stable_loads <- into.stable_loads + t.stable_loads;
  into.stable_rejects <- into.stable_rejects + t.stable_rejects;
  into.faults_injected <- into.faults_injected + t.faults_injected;
  into.journal_replays <- into.journal_replays + t.journal_replays;
  into.journal_rollbacks <- into.journal_rollbacks + t.journal_rollbacks;
  into.link_rollbacks <- into.link_rollbacks + t.link_rollbacks;
  into.plan_fallbacks <- into.plan_fallbacks + t.plan_fallbacks;
  into.ipc_retries <- into.ipc_retries + t.ipc_retries;
  into.net_delivered <- into.net_delivered + t.net_delivered;
  into.net_dropped <- into.net_dropped + t.net_dropped;
  into.net_duplicated <- into.net_duplicated + t.net_duplicated;
  into.net_retransmits <- into.net_retransmits + t.net_retransmits;
  into.cow_faults <- into.cow_faults + t.cow_faults;
  into.pages_copied <- into.pages_copied + t.pages_copied;
  into.bytes_saved <- into.bytes_saved + t.bytes_saved;
  into.jit_compiles <- into.jit_compiles + t.jit_compiles;
  into.jit_hits <- into.jit_hits + t.jit_hits;
  into.jit_exits <- into.jit_exits + t.jit_exits;
  into.jit_invalidations <- into.jit_invalidations + t.jit_invalidations;
  into.major_faults <- into.major_faults + t.major_faults;
  into.minor_faults <- into.minor_faults + t.minor_faults;
  into.pages_evicted <- into.pages_evicted + t.pages_evicted;
  into.pages_written_back <- into.pages_written_back + t.pages_written_back;
  (* the gauge is per-domain clock state; the merged gauge is the sum of
     the domains' live resident sets *)
  into.resident_pages <- into.resident_pages + t.resident_pages

let reset () =
  global.instructions <- 0;
  global.syscalls <- 0;
  global.bytes_copied <- 0;
  global.faults <- 0;
  global.pages_mapped <- 0;
  global.modules_linked <- 0;
  global.relocs_applied <- 0;
  global.symbols_resolved <- 0;
  global.files_opened <- 0;
  global.messages_sent <- 0;
  global.context_switches <- 0;
  global.tlb_hits <- 0;
  global.tlb_misses <- 0;
  global.decode_hits <- 0;
  global.sym_hash_hits <- 0;
  global.sym_hash_misses <- 0;
  global.plan_hits <- 0;
  global.plan_misses <- 0;
  global.search_cache_hits <- 0;
  global.stable_persists <- 0;
  global.stable_loads <- 0;
  global.stable_rejects <- 0;
  global.faults_injected <- 0;
  global.journal_replays <- 0;
  global.journal_rollbacks <- 0;
  global.link_rollbacks <- 0;
  global.plan_fallbacks <- 0;
  global.ipc_retries <- 0;
  global.net_delivered <- 0;
  global.net_dropped <- 0;
  global.net_duplicated <- 0;
  global.net_retransmits <- 0;
  global.cow_faults <- 0;
  global.pages_copied <- 0;
  global.bytes_saved <- 0;
  global.jit_compiles <- 0;
  global.jit_hits <- 0;
  global.jit_exits <- 0;
  global.jit_invalidations <- 0;
  global.major_faults <- 0;
  global.minor_faults <- 0;
  global.pages_evicted <- 0;
  global.pages_written_back <- 0
  (* [resident_pages] deliberately survives [reset]: it is a gauge of
     live pager state, not a count accumulated inside a measured
     region. *)

let snapshot () = { global with instructions = global.instructions }

let diff ~before ~after =
  {
    instructions = after.instructions - before.instructions;
    syscalls = after.syscalls - before.syscalls;
    bytes_copied = after.bytes_copied - before.bytes_copied;
    faults = after.faults - before.faults;
    pages_mapped = after.pages_mapped - before.pages_mapped;
    modules_linked = after.modules_linked - before.modules_linked;
    relocs_applied = after.relocs_applied - before.relocs_applied;
    symbols_resolved = after.symbols_resolved - before.symbols_resolved;
    files_opened = after.files_opened - before.files_opened;
    messages_sent = after.messages_sent - before.messages_sent;
    context_switches = after.context_switches - before.context_switches;
    tlb_hits = after.tlb_hits - before.tlb_hits;
    tlb_misses = after.tlb_misses - before.tlb_misses;
    decode_hits = after.decode_hits - before.decode_hits;
    sym_hash_hits = after.sym_hash_hits - before.sym_hash_hits;
    sym_hash_misses = after.sym_hash_misses - before.sym_hash_misses;
    plan_hits = after.plan_hits - before.plan_hits;
    plan_misses = after.plan_misses - before.plan_misses;
    search_cache_hits = after.search_cache_hits - before.search_cache_hits;
    stable_persists = after.stable_persists - before.stable_persists;
    stable_loads = after.stable_loads - before.stable_loads;
    stable_rejects = after.stable_rejects - before.stable_rejects;
    faults_injected = after.faults_injected - before.faults_injected;
    journal_replays = after.journal_replays - before.journal_replays;
    journal_rollbacks = after.journal_rollbacks - before.journal_rollbacks;
    link_rollbacks = after.link_rollbacks - before.link_rollbacks;
    plan_fallbacks = after.plan_fallbacks - before.plan_fallbacks;
    ipc_retries = after.ipc_retries - before.ipc_retries;
    net_delivered = after.net_delivered - before.net_delivered;
    net_dropped = after.net_dropped - before.net_dropped;
    net_duplicated = after.net_duplicated - before.net_duplicated;
    net_retransmits = after.net_retransmits - before.net_retransmits;
    cow_faults = after.cow_faults - before.cow_faults;
    pages_copied = after.pages_copied - before.pages_copied;
    bytes_saved = after.bytes_saved - before.bytes_saved;
    jit_compiles = after.jit_compiles - before.jit_compiles;
    jit_hits = after.jit_hits - before.jit_hits;
    jit_exits = after.jit_exits - before.jit_exits;
    jit_invalidations = after.jit_invalidations - before.jit_invalidations;
    major_faults = after.major_faults - before.major_faults;
    minor_faults = after.minor_faults - before.minor_faults;
    pages_evicted = after.pages_evicted - before.pages_evicted;
    pages_written_back = after.pages_written_back - before.pages_written_back;
    resident_pages = after.resident_pages;
  }

(* Cost model, in simulated cycles.  The weights are the conventional
   order-of-magnitude ratios for early-90s RISC workstations: a syscall
   trap costs ~hundreds of instructions, a page fault delivered to a
   user-level handler ~a thousand, copies run at ~1 cycle/byte, and a
   mapping costs a VMA update (pages are populated lazily, so the
   per-page cost is small). *)
let cycles t =
  t.instructions + (400 * t.syscalls) + t.bytes_copied + (1200 * t.faults)
  + (2 * t.pages_mapped)
  + (30 * t.relocs_applied)
  + (60 * t.symbols_resolved)
  + (250 * t.files_opened)
  + (500 * t.messages_sent)
  + (150 * t.context_switches)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instructions      %8d@,\
     syscalls          %8d@,\
     bytes copied      %8d@,\
     faults            %8d@,\
     pages mapped      %8d@,\
     modules linked    %8d@,\
     relocs applied    %8d@,\
     symbols resolved  %8d@,\
     files opened      %8d@,\
     messages sent     %8d@,\
     context switches  %8d@,\
     ~cycles           %8d@]"
    t.instructions t.syscalls t.bytes_copied t.faults t.pages_mapped
    t.modules_linked t.relocs_applied t.symbols_resolved t.files_opened
    t.messages_sent t.context_switches (cycles t)

let measure f =
  let before = snapshot () in
  let result = f () in
  let after = snapshot () in
  (result, diff ~before ~after)

(* --- JSON codec -------------------------------------------------------
   The field table drives both directions, so [of_json] round-trips
   [to_json] exactly and a counter added to the record only needs one
   table row here.  The benches embed [to_json] snapshots in their
   BENCH_*.json files; linkstat dumps embed them next to per-symbol
   resolution provenance. *)

let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("instructions", (fun t -> t.instructions), fun t v -> t.instructions <- v);
    ("syscalls", (fun t -> t.syscalls), fun t v -> t.syscalls <- v);
    ("bytes_copied", (fun t -> t.bytes_copied), fun t v -> t.bytes_copied <- v);
    ("faults", (fun t -> t.faults), fun t v -> t.faults <- v);
    ("pages_mapped", (fun t -> t.pages_mapped), fun t v -> t.pages_mapped <- v);
    ("modules_linked", (fun t -> t.modules_linked), fun t v -> t.modules_linked <- v);
    ("relocs_applied", (fun t -> t.relocs_applied), fun t v -> t.relocs_applied <- v);
    ("symbols_resolved", (fun t -> t.symbols_resolved), fun t v -> t.symbols_resolved <- v);
    ("files_opened", (fun t -> t.files_opened), fun t v -> t.files_opened <- v);
    ("messages_sent", (fun t -> t.messages_sent), fun t v -> t.messages_sent <- v);
    ("context_switches", (fun t -> t.context_switches), fun t v -> t.context_switches <- v);
    ("tlb_hits", (fun t -> t.tlb_hits), fun t v -> t.tlb_hits <- v);
    ("tlb_misses", (fun t -> t.tlb_misses), fun t v -> t.tlb_misses <- v);
    ("decode_hits", (fun t -> t.decode_hits), fun t v -> t.decode_hits <- v);
    ("sym_hash_hits", (fun t -> t.sym_hash_hits), fun t v -> t.sym_hash_hits <- v);
    ("sym_hash_misses", (fun t -> t.sym_hash_misses), fun t v -> t.sym_hash_misses <- v);
    ("plan_hits", (fun t -> t.plan_hits), fun t v -> t.plan_hits <- v);
    ("plan_misses", (fun t -> t.plan_misses), fun t v -> t.plan_misses <- v);
    ("search_cache_hits", (fun t -> t.search_cache_hits), fun t v -> t.search_cache_hits <- v);
    ("stable_persists", (fun t -> t.stable_persists), fun t v -> t.stable_persists <- v);
    ("stable_loads", (fun t -> t.stable_loads), fun t v -> t.stable_loads <- v);
    ("stable_rejects", (fun t -> t.stable_rejects), fun t v -> t.stable_rejects <- v);
    ("faults_injected", (fun t -> t.faults_injected), fun t v -> t.faults_injected <- v);
    ("journal_replays", (fun t -> t.journal_replays), fun t v -> t.journal_replays <- v);
    ("journal_rollbacks", (fun t -> t.journal_rollbacks), fun t v -> t.journal_rollbacks <- v);
    ("link_rollbacks", (fun t -> t.link_rollbacks), fun t v -> t.link_rollbacks <- v);
    ("plan_fallbacks", (fun t -> t.plan_fallbacks), fun t v -> t.plan_fallbacks <- v);
    ("ipc_retries", (fun t -> t.ipc_retries), fun t v -> t.ipc_retries <- v);
    ("net_delivered", (fun t -> t.net_delivered), fun t v -> t.net_delivered <- v);
    ("net_dropped", (fun t -> t.net_dropped), fun t v -> t.net_dropped <- v);
    ("net_duplicated", (fun t -> t.net_duplicated), fun t v -> t.net_duplicated <- v);
    ("net_retransmits", (fun t -> t.net_retransmits), fun t v -> t.net_retransmits <- v);
    ("cow_faults", (fun t -> t.cow_faults), fun t v -> t.cow_faults <- v);
    ("pages_copied", (fun t -> t.pages_copied), fun t v -> t.pages_copied <- v);
    ("bytes_saved", (fun t -> t.bytes_saved), fun t v -> t.bytes_saved <- v);
    ("jit_compiles", (fun t -> t.jit_compiles), fun t v -> t.jit_compiles <- v);
    ("jit_hits", (fun t -> t.jit_hits), fun t v -> t.jit_hits <- v);
    ("jit_exits", (fun t -> t.jit_exits), fun t v -> t.jit_exits <- v);
    ("jit_invalidations", (fun t -> t.jit_invalidations), fun t v -> t.jit_invalidations <- v);
    ("major_faults", (fun t -> t.major_faults), fun t v -> t.major_faults <- v);
    ("minor_faults", (fun t -> t.minor_faults), fun t v -> t.minor_faults <- v);
    ("pages_evicted", (fun t -> t.pages_evicted), fun t v -> t.pages_evicted <- v);
    ("pages_written_back", (fun t -> t.pages_written_back), fun t v -> t.pages_written_back <- v);
    ("resident_pages", (fun t -> t.resident_pages), fun t v -> t.resident_pages <- v);
  ]

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{ ";
  List.iteri
    (fun i (name, get, _) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" name (get t)))
    fields;
  Buffer.add_string b " }";
  Buffer.contents b

(* Minimal parser for the flat object shape [to_json] emits: quoted
   keys mapped to integers, in any order; unknown keys are ignored. *)
let of_json s =
  let t = zero () in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt s !i '"' with
    | None -> i := n
    | Some q0 -> (
      match String.index_from_opt s (q0 + 1) '"' with
      | None -> i := n
      | Some q1 ->
        let key = String.sub s (q0 + 1) (q1 - q0 - 1) in
        let j = ref (q1 + 1) in
        while
          !j < n && (s.[!j] = ':' || s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\n')
        do
          incr j
        done;
        let v0 = !j in
        if !j < n && s.[!j] = '-' then incr j;
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        (if !j > v0 then
           match int_of_string_opt (String.sub s v0 (!j - v0)) with
           | Some v -> (
             match List.find_opt (fun (name, _, _) -> String.equal name key) fields with
             | Some (_, _, set) -> set t v
             | None -> ())
           | None -> ());
        i := max (!j) (q1 + 1))
  done;
  t

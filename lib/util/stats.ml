type t = {
  mutable instructions : int;
  mutable syscalls : int;
  mutable bytes_copied : int;
  mutable faults : int;
  mutable pages_mapped : int;
  mutable modules_linked : int;
  mutable relocs_applied : int;
  mutable symbols_resolved : int;
  mutable files_opened : int;
  mutable messages_sent : int;
  mutable context_switches : int;
  (* Fast-path observability.  These count host-side cache behaviour of
     the simulator itself and are deliberately excluded from [cycles]:
     the simulated cost model must be byte-identical with the caches on
     or off. *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable decode_hits : int;
  mutable sym_hash_hits : int;
  mutable sym_hash_misses : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable search_cache_hits : int;
  (* Robustness observability.  Counted by the fault-injection engine
     and the recovery machinery; all zero when no plan is armed, and —
     like the fast-path counters — excluded from [cycles]. *)
  mutable faults_injected : int;
  mutable journal_replays : int;
  mutable journal_rollbacks : int;
  mutable link_rollbacks : int;
  mutable plan_fallbacks : int;
  mutable ipc_retries : int;
  (* Network observability.  Counted by the simulated network layer
     ([Net]/[Cluster]): datagram fates and reliable-send retransmits.
     Excluded from [cycles] — delivered traffic is already billed as
     [messages_sent]/[bytes_copied] on the delivering domain, and the
     default [ideal] profile must leave the cost model byte-identical
     to the loss-free bus it replaces. *)
  mutable net_delivered : int;
  mutable net_dropped : int;
  mutable net_duplicated : int;
  mutable net_retransmits : int;
  (* Copy-on-write observability.  [pages_copied]/[bytes_saved] measure
     how much copying COW actually performed vs avoided; [cow_faults]
     counts the kernel-internal protection faults that break mapping-level
     sharing.  All three are excluded from [cycles]: COW is a semantic
     optimization whose *billed* costs show up as the bytes_copied and
     faults it no longer incurs, and the golden transcripts must stay
     byte-identical with HEMLOCK_NO_COW on or off. *)
  mutable cow_faults : int;
  mutable pages_copied : int;
  mutable bytes_saved : int;
  (* Trace-JIT observability.  Host-side compilation behaviour of the
     trace compiler; excluded from [cycles] — the JIT must leave the
     simulated cost model byte-identical to the interpreter. *)
  mutable jit_compiles : int;
  mutable jit_hits : int;
  mutable jit_exits : int;
  mutable jit_invalidations : int;
  (* Demand-paging observability.  The pager resolves [Not_resident]
     faults inside the kernel, like COW: user programs never observe
     them, [faults] never counts them, and they consume no fuel — so
     all five stay excluded from [cycles] and the golden transcripts
     are byte-identical with HEMLOCK_NO_PAGER on or off and under any
     HEMLOCK_RAM_PAGES.  [resident_pages] is a gauge (current pageable
     resident set), not a cumulative count. *)
  mutable major_faults : int;
  mutable minor_faults : int;
  mutable pages_evicted : int;
  mutable pages_written_back : int;
  mutable resident_pages : int;
}

let zero () =
  {
    instructions = 0;
    syscalls = 0;
    bytes_copied = 0;
    faults = 0;
    pages_mapped = 0;
    modules_linked = 0;
    relocs_applied = 0;
    symbols_resolved = 0;
    files_opened = 0;
    messages_sent = 0;
    context_switches = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    decode_hits = 0;
    sym_hash_hits = 0;
    sym_hash_misses = 0;
    plan_hits = 0;
    plan_misses = 0;
    search_cache_hits = 0;
    faults_injected = 0;
    journal_replays = 0;
    journal_rollbacks = 0;
    link_rollbacks = 0;
    plan_fallbacks = 0;
    ipc_retries = 0;
    net_delivered = 0;
    net_dropped = 0;
    net_duplicated = 0;
    net_retransmits = 0;
    cow_faults = 0;
    pages_copied = 0;
    bytes_saved = 0;
    jit_compiles = 0;
    jit_hits = 0;
    jit_exits = 0;
    jit_invalidations = 0;
    major_faults = 0;
    minor_faults = 0;
    pages_evicted = 0;
    pages_written_back = 0;
    resident_pages = 0;
  }

let global = zero ()

(* --- per-domain counters ---------------------------------------------
   Every domain owns a private counter record reached through [cur];
   the main domain's record {e is} [global], so single-domain code (and
   every existing test and benchmark) observes exactly the seed's
   behaviour.  Worker domains start from zero and are merged into the
   spawner's record in worker-index order when a domain pool shuts
   down — all fields are sums, so the merged totals are independent of
   the host interleaving. *)

let dls_key = Domain.DLS.new_key zero

let () = Domain.DLS.set dls_key global

let cur () = Domain.DLS.get dls_key

let merge_into ~into t =
  into.instructions <- into.instructions + t.instructions;
  into.syscalls <- into.syscalls + t.syscalls;
  into.bytes_copied <- into.bytes_copied + t.bytes_copied;
  into.faults <- into.faults + t.faults;
  into.pages_mapped <- into.pages_mapped + t.pages_mapped;
  into.modules_linked <- into.modules_linked + t.modules_linked;
  into.relocs_applied <- into.relocs_applied + t.relocs_applied;
  into.symbols_resolved <- into.symbols_resolved + t.symbols_resolved;
  into.files_opened <- into.files_opened + t.files_opened;
  into.messages_sent <- into.messages_sent + t.messages_sent;
  into.context_switches <- into.context_switches + t.context_switches;
  into.tlb_hits <- into.tlb_hits + t.tlb_hits;
  into.tlb_misses <- into.tlb_misses + t.tlb_misses;
  into.decode_hits <- into.decode_hits + t.decode_hits;
  into.sym_hash_hits <- into.sym_hash_hits + t.sym_hash_hits;
  into.sym_hash_misses <- into.sym_hash_misses + t.sym_hash_misses;
  into.plan_hits <- into.plan_hits + t.plan_hits;
  into.plan_misses <- into.plan_misses + t.plan_misses;
  into.search_cache_hits <- into.search_cache_hits + t.search_cache_hits;
  into.faults_injected <- into.faults_injected + t.faults_injected;
  into.journal_replays <- into.journal_replays + t.journal_replays;
  into.journal_rollbacks <- into.journal_rollbacks + t.journal_rollbacks;
  into.link_rollbacks <- into.link_rollbacks + t.link_rollbacks;
  into.plan_fallbacks <- into.plan_fallbacks + t.plan_fallbacks;
  into.ipc_retries <- into.ipc_retries + t.ipc_retries;
  into.net_delivered <- into.net_delivered + t.net_delivered;
  into.net_dropped <- into.net_dropped + t.net_dropped;
  into.net_duplicated <- into.net_duplicated + t.net_duplicated;
  into.net_retransmits <- into.net_retransmits + t.net_retransmits;
  into.cow_faults <- into.cow_faults + t.cow_faults;
  into.pages_copied <- into.pages_copied + t.pages_copied;
  into.bytes_saved <- into.bytes_saved + t.bytes_saved;
  into.jit_compiles <- into.jit_compiles + t.jit_compiles;
  into.jit_hits <- into.jit_hits + t.jit_hits;
  into.jit_exits <- into.jit_exits + t.jit_exits;
  into.jit_invalidations <- into.jit_invalidations + t.jit_invalidations;
  into.major_faults <- into.major_faults + t.major_faults;
  into.minor_faults <- into.minor_faults + t.minor_faults;
  into.pages_evicted <- into.pages_evicted + t.pages_evicted;
  into.pages_written_back <- into.pages_written_back + t.pages_written_back;
  (* the gauge is per-domain clock state; the merged gauge is the sum of
     the domains' live resident sets *)
  into.resident_pages <- into.resident_pages + t.resident_pages

let reset () =
  global.instructions <- 0;
  global.syscalls <- 0;
  global.bytes_copied <- 0;
  global.faults <- 0;
  global.pages_mapped <- 0;
  global.modules_linked <- 0;
  global.relocs_applied <- 0;
  global.symbols_resolved <- 0;
  global.files_opened <- 0;
  global.messages_sent <- 0;
  global.context_switches <- 0;
  global.tlb_hits <- 0;
  global.tlb_misses <- 0;
  global.decode_hits <- 0;
  global.sym_hash_hits <- 0;
  global.sym_hash_misses <- 0;
  global.plan_hits <- 0;
  global.plan_misses <- 0;
  global.search_cache_hits <- 0;
  global.faults_injected <- 0;
  global.journal_replays <- 0;
  global.journal_rollbacks <- 0;
  global.link_rollbacks <- 0;
  global.plan_fallbacks <- 0;
  global.ipc_retries <- 0;
  global.net_delivered <- 0;
  global.net_dropped <- 0;
  global.net_duplicated <- 0;
  global.net_retransmits <- 0;
  global.cow_faults <- 0;
  global.pages_copied <- 0;
  global.bytes_saved <- 0;
  global.jit_compiles <- 0;
  global.jit_hits <- 0;
  global.jit_exits <- 0;
  global.jit_invalidations <- 0;
  global.major_faults <- 0;
  global.minor_faults <- 0;
  global.pages_evicted <- 0;
  global.pages_written_back <- 0
  (* [resident_pages] deliberately survives [reset]: it is a gauge of
     live pager state, not a count accumulated inside a measured
     region. *)

let snapshot () = { global with instructions = global.instructions }

let diff ~before ~after =
  {
    instructions = after.instructions - before.instructions;
    syscalls = after.syscalls - before.syscalls;
    bytes_copied = after.bytes_copied - before.bytes_copied;
    faults = after.faults - before.faults;
    pages_mapped = after.pages_mapped - before.pages_mapped;
    modules_linked = after.modules_linked - before.modules_linked;
    relocs_applied = after.relocs_applied - before.relocs_applied;
    symbols_resolved = after.symbols_resolved - before.symbols_resolved;
    files_opened = after.files_opened - before.files_opened;
    messages_sent = after.messages_sent - before.messages_sent;
    context_switches = after.context_switches - before.context_switches;
    tlb_hits = after.tlb_hits - before.tlb_hits;
    tlb_misses = after.tlb_misses - before.tlb_misses;
    decode_hits = after.decode_hits - before.decode_hits;
    sym_hash_hits = after.sym_hash_hits - before.sym_hash_hits;
    sym_hash_misses = after.sym_hash_misses - before.sym_hash_misses;
    plan_hits = after.plan_hits - before.plan_hits;
    plan_misses = after.plan_misses - before.plan_misses;
    search_cache_hits = after.search_cache_hits - before.search_cache_hits;
    faults_injected = after.faults_injected - before.faults_injected;
    journal_replays = after.journal_replays - before.journal_replays;
    journal_rollbacks = after.journal_rollbacks - before.journal_rollbacks;
    link_rollbacks = after.link_rollbacks - before.link_rollbacks;
    plan_fallbacks = after.plan_fallbacks - before.plan_fallbacks;
    ipc_retries = after.ipc_retries - before.ipc_retries;
    net_delivered = after.net_delivered - before.net_delivered;
    net_dropped = after.net_dropped - before.net_dropped;
    net_duplicated = after.net_duplicated - before.net_duplicated;
    net_retransmits = after.net_retransmits - before.net_retransmits;
    cow_faults = after.cow_faults - before.cow_faults;
    pages_copied = after.pages_copied - before.pages_copied;
    bytes_saved = after.bytes_saved - before.bytes_saved;
    jit_compiles = after.jit_compiles - before.jit_compiles;
    jit_hits = after.jit_hits - before.jit_hits;
    jit_exits = after.jit_exits - before.jit_exits;
    jit_invalidations = after.jit_invalidations - before.jit_invalidations;
    major_faults = after.major_faults - before.major_faults;
    minor_faults = after.minor_faults - before.minor_faults;
    pages_evicted = after.pages_evicted - before.pages_evicted;
    pages_written_back = after.pages_written_back - before.pages_written_back;
    resident_pages = after.resident_pages;
  }

(* Cost model, in simulated cycles.  The weights are the conventional
   order-of-magnitude ratios for early-90s RISC workstations: a syscall
   trap costs ~hundreds of instructions, a page fault delivered to a
   user-level handler ~a thousand, copies run at ~1 cycle/byte, and a
   mapping costs a VMA update (pages are populated lazily, so the
   per-page cost is small). *)
let cycles t =
  t.instructions + (400 * t.syscalls) + t.bytes_copied + (1200 * t.faults)
  + (2 * t.pages_mapped)
  + (30 * t.relocs_applied)
  + (60 * t.symbols_resolved)
  + (250 * t.files_opened)
  + (500 * t.messages_sent)
  + (150 * t.context_switches)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instructions      %8d@,\
     syscalls          %8d@,\
     bytes copied      %8d@,\
     faults            %8d@,\
     pages mapped      %8d@,\
     modules linked    %8d@,\
     relocs applied    %8d@,\
     symbols resolved  %8d@,\
     files opened      %8d@,\
     messages sent     %8d@,\
     context switches  %8d@,\
     ~cycles           %8d@]"
    t.instructions t.syscalls t.bytes_copied t.faults t.pages_mapped
    t.modules_linked t.relocs_applied t.symbols_resolved t.files_opened
    t.messages_sent t.context_switches (cycles t)

let measure f =
  let before = snapshot () in
  let result = f () in
  let after = snapshot () in
  (result, diff ~before ~after)

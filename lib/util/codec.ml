let mask32 v = v land 0xFFFF_FFFF

let sext16 v =
  let v = v land 0xFFFF in
  if v land 0x8000 <> 0 then v - 0x1_0000 else v

let sext32 v =
  let v = mask32 v in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xFF))

(* These sit under every memory access the interpreter and the trace
   JIT make: one explicit range check, then the unchecked 16-bit
   primitives (little-endian loads/stores of immediate ints — no boxed
   [Int32] allocation, unlike the [Bytes.get_int32_le] route, and small
   enough to inline at call sites). *)
external unsafe_get_16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_set_16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"

let get_u16 b off = Bytes.get_uint16_le b off

let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xFFFF)

let unsafe_get_u32 b off =
  unsafe_get_16 b off lor (unsafe_get_16 b (off + 2) lsl 16)

let unsafe_set_u32 b off v =
  unsafe_set_16 b off v;
  unsafe_set_16 b (off + 2) (v lsr 16)

let get_u32 b off =
  if off < 0 || off + 4 > Bytes.length b then invalid_arg "index out of bounds";
  unsafe_get_u32 b off

let set_u32 b off v =
  if off < 0 || off + 4 > Bytes.length b then invalid_arg "index out of bounds";
  unsafe_set_u32 b off v

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let str t s =
    u16 t (String.length s);
    Buffer.add_string t s

  let bytes t b = Buffer.add_bytes t b
  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int }

  let create data = { data; pos = 0 }
  let pos t = t.pos
  let eof t = t.pos >= Bytes.length t.data

  let check t n =
    if t.pos + n > Bytes.length t.data then failwith "Codec.Reader: truncated input"

  let u8 t =
    check t 1;
    let v = get_u8 t.data t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    check t 2;
    let v = get_u16 t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    check t 4;
    let v = get_u32 t.data t.pos in
    t.pos <- t.pos + 4;
    v

  let str t =
    let n = u16 t in
    check t n;
    let s = Bytes.sub_string t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t n =
    check t n;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b
end

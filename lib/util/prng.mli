(** Deterministic splitmix64 PRNG.  Workload generators use this rather
    than [Random] so every experiment is exactly reproducible. *)

type t

val create : seed:int -> t

(** Next raw 64-bit value (as a non-negative 62-bit OCaml int). *)
val next : t -> int

(** [split t] advances [t] once and returns an independent child
    generator derived deterministically from the consumed draw —
    SplitMix-style stream splitting.  Parent and child share no state
    afterwards, so one can live on another domain. *)
val split : t -> t

(** [stream ~seed ~index] is the [index]-th independent stream of the
    [seed] family (the [index]-th [split] of a fresh root generator).
    Per-domain consumers use stream [d] on domain [d], making their
    draws deterministic under any machine-to-domain partition.
    @raise Invalid_argument if [index < 0]. *)
val stream : seed:int -> index:int -> t

(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [\[lo, hi)]. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** Uniform choice from a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
